package oracle

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/hopset"
	"repro/internal/lru"
)

// LatencySnapshot is the per-route latency summary exposed by Stats (the
// shared internal/hist shape: count, mean, p50/p90/p99/p999/max in µs).
type LatencySnapshot = hist.Snapshot

// Latency-histogram routes. One fixed-bucket histogram per query surface,
// recorded at the Engine API boundary, so server-side tails are
// observable from /stats without an external load generator attached.
const (
	latDist = iota
	latMulti
	latMatrix
	latNearest
	latPath
	latTree
	numLatRoutes
)

// latRouteNames index the Stats.Latency map; they match the HTTP verb
// that lands on each surface.
var latRouteNames = [numLatRoutes]string{"dist", "multi", "matrix", "nearest", "path", "tree"}

// Engine is a build-once / query-many distance oracle. All methods are
// safe for concurrent use: the hopset and adjacency built by the
// constructor are immutable, per-query scratch is pooled, and concurrent
// queries return bit-identical results to sequential ones (the underlying
// construction and queries are fully deterministic).
//
// Cached results — the slices returned by Dist and MultiSource and the
// Trees returned by Tree — are shared between callers and must be treated
// as read-only.
type Engine struct {
	solver *core.Solver
	n      int
	// memBytes is the resident-size estimate, computed once at
	// construction (the walk over recorded memory paths is O(total path
	// steps) — too slow for per-stats-poll recomputation under locks).
	memBytes int64

	distCache *lru.Cache[[]float64]
	treeCache *lru.Cache[*Tree]
	batcher   *distBatcher

	distFlight flight[[]float64]
	treeFlight flight[*Tree]

	// auditG is the audit-time ground-truth graph in input weight units,
	// built lazily by AuditGraph (the hopset's retained graph may carry
	// normalized weights).
	auditOnce sync.Once
	auditG    *graph.Graph

	// lat holds one serve-side latency histogram per query route,
	// recorded on every public query call (hits and misses alike), so
	// the cache-hit floor and the exploration tail are both visible.
	lat [numLatRoutes]hist.Histogram

	distQueries    atomic.Int64
	multiQueries   atomic.Int64
	nearestQueries atomic.Int64
	pathQueries    atomic.Int64
	treeQueries    atomic.Int64
	matrixQueries  atomic.Int64
}

func newEngine(solver *core.Solver, cfg config) *Engine {
	e := &Engine{
		solver:    solver,
		n:         solver.N(),
		distCache: lru.New[[]float64](cfg.distCache),
		treeCache: lru.New[*Tree](cfg.treeCache),
	}
	if cfg.batchWindow > 0 {
		e.batcher = newDistBatcher(cfg.batchWindow, solver.ApproxMultiSource, e.distCache.Add)
	}
	e.memBytes = estimateMemoryBytes(solver)
	return e
}

// N returns the number of vertices the engine serves.
func (e *Engine) N() int {
	if e == nil || e.solver == nil {
		return 0
	}
	return e.n
}

// Hopset exposes the underlying hopset (size, schedule, ledger) for
// in-module inspection and verification tooling.
func (e *Engine) Hopset() *hopset.Hopset {
	if e == nil || e.solver == nil {
		return nil
	}
	return e.solver.Hopset()
}

// HopBudget returns the per-query Bellman–Ford round budget (0 on an
// unbuilt engine).
func (e *Engine) HopBudget() int {
	if e == nil || e.solver == nil {
		return 0
	}
	return e.solver.HopBudget()
}

// Solver exposes the wrapped solver, for in-module callers that need the
// lower-level API (e.g. NearestSource reference comparisons in tests).
func (e *Engine) Solver() *core.Solver {
	if e == nil {
		return nil
	}
	return e.solver
}

// MemoryBytes returns the estimated resident size of the engine's
// immutable state: the G ∪ H CSR adjacency (per arc: neighbor, weight,
// tag), the hopset edge list and recorded memory paths, and the graph's
// own edge arrays. Cache contents are excluded — they are bounded by the
// configured LRU capacities and recycled. The Registry evicts cold graphs
// against this estimate. The value is computed once at construction.
func (e *Engine) MemoryBytes() int64 {
	if e == nil || e.solver == nil {
		return 0
	}
	return e.memBytes
}

func estimateMemoryBytes(solver *core.Solver) int64 {
	h := solver.Hopset()
	const (
		arcBytes  = 4 + 8 + 4 // Nbr int32 + Wt float64 + Tag int32
		edgeBytes = 4 + 4 + 8 // U, V int32 + W float64 (graph edge)
		hopBytes  = 32        // hopset.Edge: endpoints, weight, provenance
		stepBytes = 16        // hopset.PathStep
	)
	n := int64(h.G.N)
	arcs := int64(2 * h.G.M()) // graph arcs, both directions
	extra := int64(2 * h.Size())
	bytes := (n + 1) * 4                // CSR offsets
	bytes += (arcs + extra) * arcBytes  // combined adjacency
	bytes += int64(h.G.M()) * edgeBytes // graph edge list
	bytes += int64(h.Size()) * hopBytes // hopset edges
	for _, p := range h.Paths {
		bytes += int64(len(p)) * stepBytes
	}
	return bytes
}

func (e *Engine) ready() error {
	if e == nil || e.solver == nil {
		return ErrNotBuilt
	}
	return nil
}

func (e *Engine) checkVertex(v int32) error {
	if v < 0 || int(v) >= e.n {
		return fmt.Errorf("%w: vertex %d not in [0,%d)", ErrVertexOutOfRange, v, e.n)
	}
	return nil
}

// Dist returns (1+ε)-approximate distances from source to every vertex
// (+Inf for unreachable ones). The vector is served from the LRU cache
// when possible; on a miss it is computed — coalesced with concurrent
// misses when a batch window is configured — and cached. The returned
// slice is shared: do not modify it.
func (e *Engine) Dist(source int32) ([]float64, error) {
	if e == nil {
		return nil, ErrNotBuilt
	}
	start := time.Now()
	d, err := e.dist(source)
	e.lat[latDist].Observe(time.Since(start))
	return d, err
}

func (e *Engine) dist(source int32) ([]float64, error) {
	if err := e.ready(); err != nil {
		return nil, err
	}
	if err := e.checkVertex(source); err != nil {
		return nil, err
	}
	e.distQueries.Add(1)
	if d, ok := e.distCache.Get(source); ok {
		return d, nil
	}
	if e.batcher != nil {
		return e.batcher.enqueue(source)
	}
	return e.distFlight.do(source, func() ([]float64, error) {
		d, err := e.solver.ApproxDistances(source)
		if err != nil {
			return nil, err
		}
		e.distCache.Add(source, d)
		return d, nil
	})
}

// DistTo returns the (1+ε)-approximate distance from source to target
// (+Inf when unreachable).
func (e *Engine) DistTo(source, target int32) (float64, error) {
	if err := e.ready(); err != nil {
		return 0, err
	}
	if err := e.checkVertex(target); err != nil {
		return 0, err
	}
	d, err := e.Dist(source)
	if err != nil {
		return 0, err
	}
	return d[target], nil
}

// MultiSource answers the aMSSD query of Theorem 3.8: row i is the
// (1+ε)-approximate distance vector of sources[i]. Cached rows are reused;
// the remaining sources share one multi-source call whose rows are
// computed concurrently. Rows are shared: do not modify them.
func (e *Engine) MultiSource(sources []int32) ([][]float64, error) {
	if e == nil {
		return nil, ErrNotBuilt
	}
	start := time.Now()
	rows, err := e.multiSource(sources)
	e.lat[latMulti].Observe(time.Since(start))
	return rows, err
}

func (e *Engine) multiSource(sources []int32) ([][]float64, error) {
	if err := e.ready(); err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, ErrNeedSources
	}
	for _, s := range sources {
		if err := e.checkVertex(s); err != nil {
			return nil, err
		}
	}
	e.multiQueries.Add(1)
	out := make([][]float64, len(sources))
	var missing []int32
	// missIdx is allocated lazily: the steady-state all-hit call touches
	// only the cache, keeping the warm path at one allocation (out).
	var missIdx map[int32][]int
	for i, s := range sources {
		if d, ok := e.distCache.Get(s); ok {
			out[i] = d
			continue
		}
		if missIdx == nil {
			missIdx = make(map[int32][]int)
		}
		if len(missIdx[s]) == 0 {
			missing = append(missing, s)
		}
		missIdx[s] = append(missIdx[s], i)
	}
	if len(missing) == 0 {
		return out, nil
	}
	var rows [][]float64
	var err error
	if e.batcher != nil {
		// Coalesce with concurrent Dist/MultiSource misses: the batcher
		// commits rows to the cache itself.
		rows, err = e.batcher.enqueueMany(missing)
	} else {
		rows, err = e.solver.ApproxMultiSource(missing)
	}
	if err != nil {
		return nil, err
	}
	for j, s := range missing {
		if e.batcher == nil {
			e.distCache.Add(s, rows[j])
		}
		for _, i := range missIdx[s] {
			out[i] = rows[j]
		}
	}
	return out, nil
}

// Matrix computes the S×T distance matrix: out[i][j] is the
// (1+ε)-approximate distance from sources[i] to targets[j]. All rows of
// one call run on the word-parallel batched kernel (up to relax.MaxBatch
// sources per graph traversal), bypassing the batching window — a matrix
// call is already a batch. Full rows are served from / committed to the
// distance cache, so a matrix query warms the same cache point queries
// hit. Every entry equals the corresponding DistTo answer bit for bit.
func (e *Engine) Matrix(sources, targets []int32) ([][]float64, error) {
	if e == nil {
		return nil, ErrNotBuilt
	}
	start := time.Now()
	rows, err := e.matrix(sources, targets)
	e.lat[latMatrix].Observe(time.Since(start))
	return rows, err
}

func (e *Engine) matrix(sources, targets []int32) ([][]float64, error) {
	if err := e.ready(); err != nil {
		return nil, err
	}
	if len(sources) == 0 || len(targets) == 0 {
		return nil, ErrNeedSources
	}
	for _, s := range sources {
		if err := e.checkVertex(s); err != nil {
			return nil, err
		}
	}
	for _, t := range targets {
		if err := e.checkVertex(t); err != nil {
			return nil, err
		}
	}
	e.matrixQueries.Add(1)
	full := make([][]float64, len(sources))
	var missing []int32
	var missIdx map[int32][]int // lazy, as in multiSource
	for i, s := range sources {
		if d, ok := e.distCache.Get(s); ok {
			full[i] = d
			continue
		}
		if missIdx == nil {
			missIdx = make(map[int32][]int)
		}
		if len(missIdx[s]) == 0 {
			missing = append(missing, s)
		}
		missIdx[s] = append(missIdx[s], i)
	}
	if len(missing) > 0 {
		rows, err := e.solver.ApproxMultiSource(missing)
		if err != nil {
			return nil, err
		}
		for j, s := range missing {
			e.distCache.Add(s, rows[j])
			for _, i := range missIdx[s] {
				full[i] = rows[j]
			}
		}
	}
	out := make([][]float64, len(sources))
	for i, row := range full {
		out[i] = make([]float64, len(targets))
		for j, t := range targets {
			out[i][j] = row[t]
		}
	}
	return out, nil
}

// Nearest returns, per vertex, the approximate distance to the nearest of
// the given sources, as one joint exploration (never cached — the result
// depends on the whole source set).
func (e *Engine) Nearest(sources []int32) ([]float64, error) {
	if e == nil {
		return nil, ErrNotBuilt
	}
	start := time.Now()
	d, err := e.nearest(sources)
	e.lat[latNearest].Observe(time.Since(start))
	return d, err
}

func (e *Engine) nearest(sources []int32) ([]float64, error) {
	if err := e.ready(); err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, ErrNeedSources
	}
	for _, s := range sources {
		if err := e.checkVertex(s); err != nil {
			return nil, err
		}
	}
	e.nearestQueries.Add(1)
	return e.solver.NearestSource(sources)
}

// NearestWithOffsets is Nearest with a per-source starting cost: the value
// at v approximates min_i offsets[i] + d(sources[i], v), as if a virtual
// super-source were attached to sources[i] by an edge of weight
// offsets[i]. A +Inf offset skips its source. This is the continuation
// primitive the sharded router uses to carry a search across shard
// boundaries; like Nearest, results are never cached (they depend on the
// whole seeded set).
func (e *Engine) NearestWithOffsets(sources []int32, offsets []float64) ([]float64, error) {
	if e == nil {
		return nil, ErrNotBuilt
	}
	start := time.Now()
	d, err := e.nearestWithOffsets(sources, offsets)
	e.lat[latNearest].Observe(time.Since(start))
	return d, err
}

func (e *Engine) nearestWithOffsets(sources []int32, offsets []float64) ([]float64, error) {
	if err := e.ready(); err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, ErrNeedSources
	}
	for _, s := range sources {
		if err := e.checkVertex(s); err != nil {
			return nil, err
		}
	}
	e.nearestQueries.Add(1)
	return e.solver.NearestSourceOffsets(sources, offsets)
}

// Tree returns a (1+ε)-approximate shortest-path tree rooted at source,
// with every tree edge drawn from the original graph (Theorem 4.6).
// Requires WithPathReporting. Trees are cached and shared: read-only.
func (e *Engine) Tree(source int32) (*Tree, error) {
	if e == nil {
		return nil, ErrNotBuilt
	}
	start := time.Now()
	t, err := e.tree(source)
	e.lat[latTree].Observe(time.Since(start))
	return t, err
}

func (e *Engine) tree(source int32) (*Tree, error) {
	if err := e.ready(); err != nil {
		return nil, err
	}
	if !e.solver.PathReporting() {
		return nil, ErrNeedPathReporting
	}
	if err := e.checkVertex(source); err != nil {
		return nil, err
	}
	e.treeQueries.Add(1)
	if t, ok := e.treeCache.Get(source); ok {
		return t, nil
	}
	return e.treeFlight.do(source, func() (*Tree, error) {
		spt, err := e.solver.SPT(source)
		if err != nil {
			return nil, err
		}
		t := &Tree{
			Source:  spt.Source,
			Parent:  spt.Parent,
			ParentW: spt.ParentW,
			Dist:    spt.Dist,
		}
		e.treeCache.Add(source, t)
		return t, nil
	})
}

// Path returns a concrete u–v path in the original graph whose length is
// within (1+ε) of the true distance, together with that length. The path
// is read out of the (cached) shortest-path tree rooted at u; a nil path
// with +Inf length means v is unreachable. Requires WithPathReporting.
func (e *Engine) Path(u, v int32) ([]int32, float64, error) {
	if e == nil {
		return nil, 0, ErrNotBuilt
	}
	start := time.Now()
	p, d, err := e.path(u, v)
	e.lat[latPath].Observe(time.Since(start))
	return p, d, err
}

func (e *Engine) path(u, v int32) ([]int32, float64, error) {
	if err := e.ready(); err != nil {
		return nil, 0, err
	}
	if err := e.checkVertex(v); err != nil {
		return nil, 0, err
	}
	t, err := e.tree(u)
	if err != nil {
		return nil, 0, err
	}
	e.pathQueries.Add(1)
	path := t.PathTo(v)
	if path == nil {
		return nil, math.Inf(1), nil
	}
	return path, t.Dist[v], nil
}

// RelaxStats is the relaxation engine's cumulative per-query accounting:
// how many explorations ran, how many arcs they actually scanned, and how
// the adaptive engine split its rounds between the dense full-scan kernel
// and the frontier-sparse kernel. ArcsPerExploration is the average
// scanned-arc cost of one query-time exploration — the number the
// frontier-sparse engine drives down on low-frontier workloads.
type RelaxStats struct {
	Explorations       int64   `json:"explorations"`
	ScannedArcs        int64   `json:"scanned_arcs"`
	DenseRounds        int64   `json:"dense_rounds"`
	SparseRounds       int64   `json:"sparse_rounds"`
	ArcsPerExploration float64 `json:"arcs_per_exploration"`
	// BatchedSeeds sums the source lanes of batched explorations (one
	// k-lane batch counts as one exploration carrying k seeds); the
	// sequential-equivalent scanned-arc cost of a batch is roughly
	// ScannedArcs · lanes, so this is the audit trail of the batching win.
	BatchedSeeds int64 `json:"batched_seeds"`
}

// Stats is a point-in-time snapshot of the engine's query, cache and
// batching counters.
type Stats struct {
	DistQueries    int64 `json:"dist_queries"`
	MultiQueries   int64 `json:"multi_queries"`
	NearestQueries int64 `json:"nearest_queries"`
	PathQueries    int64 `json:"path_queries"`
	TreeQueries    int64 `json:"tree_queries"`
	MatrixQueries  int64 `json:"matrix_queries"`

	DistCache CacheStats `json:"dist_cache"`
	TreeCache CacheStats `json:"tree_cache"`

	Batches         int64 `json:"batches"`
	BatchedQueries  int64 `json:"batched_queries"`
	LargestBatch    int64 `json:"largest_batch"`
	BatchWindowNano int64 `json:"batch_window_ns"`
	// BatchWaitNano is the total time coalesced queries spent parked in
	// the batching window before their batch ran — the latency price paid
	// for the shared traversals.
	BatchWaitNano int64 `json:"batch_wait_ns"`
	// BatchOccupancy is a histogram of distinct sources per flushed batch,
	// buckets 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64. Mass in the high buckets
	// means the window is actually coalescing.
	BatchOccupancy []int64 `json:"batch_occupancy,omitempty"`

	// Latency maps each query route ("dist", "multi", "matrix",
	// "nearest", "path", "tree") to its serve-side latency summary —
	// fixed-bucket histograms recorded at the API boundary, so p50/p99
	// tails are observable from /stats without a load generator
	// attached. Routes that never served a query are omitted.
	Latency map[string]LatencySnapshot `json:"latency,omitempty"`

	Relax RelaxStats `json:"relax"`

	// Sharded is set only by sharded backends (package shard): partition
	// shape, overlay size, router traffic split, and the composed stretch
	// bound. Monolithic engines leave it nil.
	Sharded *ShardStats `json:"sharded,omitempty"`
}

// Stats returns the engine's counters. Safe on a nil engine.
func (e *Engine) Stats() Stats {
	if e == nil || e.solver == nil {
		return Stats{}
	}
	st := Stats{
		DistQueries:    e.distQueries.Load(),
		MultiQueries:   e.multiQueries.Load(),
		NearestQueries: e.nearestQueries.Load(),
		PathQueries:    e.pathQueries.Load(),
		TreeQueries:    e.treeQueries.Load(),
		MatrixQueries:  e.matrixQueries.Load(),
		DistCache:      e.distCache.Snapshot(),
		TreeCache:      e.treeCache.Snapshot(),
	}
	rs := e.solver.RelaxStats()
	st.Relax = RelaxStats{
		Explorations: rs.Explorations,
		ScannedArcs:  rs.ScannedArcs,
		DenseRounds:  rs.DenseRounds,
		SparseRounds: rs.SparseRounds,
		BatchedSeeds: rs.BatchedSeeds,
	}
	if rs.Explorations > 0 {
		st.Relax.ArcsPerExploration = float64(rs.ScannedArcs) / float64(rs.Explorations)
	}
	for i := range e.lat {
		if snap := e.lat[i].Snapshot(); snap.Count > 0 {
			if st.Latency == nil {
				st.Latency = make(map[string]LatencySnapshot, numLatRoutes)
			}
			st.Latency[latRouteNames[i]] = snap
		}
	}
	if e.batcher != nil {
		st.Batches = e.batcher.batches.Load()
		st.BatchedQueries = e.batcher.batched.Load()
		st.LargestBatch = e.batcher.maxBatch.Load()
		st.BatchWindowNano = int64(e.batcher.window)
		st.BatchWaitNano = e.batcher.waitNano.Load()
		st.BatchOccupancy = e.batcher.occupancySnapshot()
	}
	return st
}

// scannedArcs reads the cumulative scanned-arc counter (a handful of
// atomic loads) — cheap enough to bracket a single query for tracing.
// Safe on a nil engine, returning 0.
func (e *Engine) scannedArcs() int64 {
	if e == nil || e.solver == nil {
		return 0
	}
	return e.solver.RelaxStats().ScannedArcs
}

// Tree is a (1+ε)-approximate shortest-path tree whose edges all belong
// to the original graph. Instances returned by Engine.Tree are cached and
// shared between callers: treat every field as read-only.
type Tree struct {
	Source int32
	// Parent[v] is v's tree parent (-1 at the source and at unreachable
	// vertices); (Parent[v], v) is always an edge of the original graph.
	Parent []int32
	// ParentW[v] is the weight of the parent edge, in input units.
	ParentW []float64
	// Dist[v] is the exact distance from Source to v inside the tree
	// (+Inf when unreachable); it is (1+ε)-approximate vs the graph.
	Dist []float64
}

// PathTo returns the tree path from the source to v (nil if unreachable).
// Two passes — measure, then fill backwards — so the path is exactly one
// allocation regardless of depth (it is on the warm serve path: the tree
// is cached, the path slice is the only per-query memory).
func (t *Tree) PathTo(v int32) []int32 {
	if math.IsInf(t.Dist[v], 1) {
		return nil
	}
	depth := 1
	for cur := v; cur != t.Source; cur = t.Parent[cur] {
		depth++
		if depth > len(t.Parent)+1 {
			return nil
		}
	}
	path := make([]int32, depth)
	for i, cur := depth-1, v; i >= 0; i, cur = i-1, t.Parent[cur] {
		path[i] = cur
	}
	return path
}
