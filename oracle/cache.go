package oracle

import (
	"sync"

	"repro/internal/lru"
)

// CacheStats is a point-in-time snapshot of one engine cache (the shared
// internal/lru stats shape).
type CacheStats = lru.Stats

// flight deduplicates concurrent identical computations: while one
// goroutine computes the value for a key, later arrivals wait and share
// the result instead of recomputing it.
type flight[V any] struct {
	mu    sync.Mutex
	calls map[int32]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func (f *flight[V]) do(key int32, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[int32]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	return c.val, c.err
}
