package oracle

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of one engine cache.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Len       int   `json:"len"`
	Cap       int   `json:"cap"`
}

// lru is a mutex-guarded LRU map from a source vertex to a cached query
// result. A capacity of 0 disables storage but still counts misses, so
// Stats stay meaningful for cache-less engines.
type lru[V any] struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recent; values are *lruEntry[V]
	items     map[int32]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type lruEntry[V any] struct {
	key int32
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity < 0 {
		capacity = 0
	}
	return &lru[V]{cap: capacity, ll: list.New(), items: make(map[int32]*list.Element)}
}

func (c *lru[V]) get(key int32) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

func (c *lru[V]) add(key int32, val V) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry[V]).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
}

func (c *lru[V]) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Len: c.ll.Len(), Cap: c.cap,
	}
}

// flight deduplicates concurrent identical computations: while one
// goroutine computes the value for a key, later arrivals wait and share
// the result instead of recomputing it.
type flight[V any] struct {
	mu    sync.Mutex
	calls map[int32]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func (f *flight[V]) do(key int32, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[int32]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	return c.val, c.err
}
