package audit

import (
	"sync/atomic"

	"repro/oracle"
)

// ring is a bounded lock-free MPMC queue (Vyukov's array queue): each
// cell carries a sequence number that encodes whose turn it is, so
// producers (serve-path goroutines recording samples) and consumers
// (audit workers) coordinate with one CAS each and never block. A full
// ring rejects the enqueue — the producer is a query handler, and audit
// backpressure must never become serving latency.
type ring struct {
	mask  uint64
	cells []ringCell
	enq   atomic.Uint64 // next enqueue position
	deq   atomic.Uint64 // next dequeue position
}

type ringCell struct {
	seq atomic.Uint64
	s   oracle.AuditSample
}

// init sizes the ring to the next power of two ≥ n.
func (r *ring) init(n int) {
	size := 1
	for size < n {
		size <<= 1
	}
	r.mask = uint64(size - 1)
	r.cells = make([]ringCell, size)
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
}

// enqueue claims a cell and publishes s. Returns false when the ring is
// full (the caller keeps ownership of the sample's handle lease).
func (r *ring) enqueue(s oracle.AuditSample) bool {
	pos := r.enq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos: // cell free for this position
			if r.enq.CompareAndSwap(pos, pos+1) {
				cell.s = s
				cell.seq.Store(pos + 1) // publish: ready for dequeue
				return true
			}
			pos = r.enq.Load()
		case seq < pos: // cell still holds an unconsumed older entry: full
			return false
		default: // another producer advanced past us; reload
			pos = r.enq.Load()
		}
	}
}

// dequeue pops the oldest sample, or reports an empty ring.
func (r *ring) dequeue() (oracle.AuditSample, bool) {
	pos := r.deq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos+1: // cell published for this position
			if r.deq.CompareAndSwap(pos, pos+1) {
				s := cell.s
				cell.s = oracle.AuditSample{} // drop references for GC
				cell.seq.Store(pos + r.mask + 1)
				return s, true
			}
			pos = r.deq.Load()
		case seq <= pos: // not yet published: empty
			return oracle.AuditSample{}, false
		default: // another consumer advanced past us; reload
			pos = r.deq.Load()
		}
	}
}

// len is the approximate queue depth (racy by nature; for stats only).
func (r *ring) len() int64 {
	n := int64(r.enq.Load()) - int64(r.deq.Load())
	if n < 0 {
		return 0
	}
	return n
}
