package audit_test

import (
	"context"
	"io"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/oracle"
	"repro/oracle/audit"
)

func testGraph(n int, seed int64) *graph.Graph {
	return graph.Gnm(n, 3*n, graph.UniformWeights(1, 6), seed)
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// settle waits until every accepted sample has been audited or dropped.
func settle(t *testing.T, a *audit.Auditor) audit.Stats {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := a.Stats()
		if st.Audited+st.Dropped+st.Unsupported+st.Errors >= st.Sampled && st.Pending == 0 {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("audits did not settle: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A correct engine at 100% sampling yields zero violations and a stretch
// histogram bounded by the advertised (1+eps).
func TestAuditCleanEngine(t *testing.T) {
	a := audit.New(audit.Config{SampleRate: 1, Logger: quietLogger()})
	defer a.Close()
	r := oracle.NewRegistry(oracle.RegistryConfig{Audit: a})
	defer r.Close()

	const eps = 0.25
	if err := r.Add("g", oracle.GraphSource(testGraph(160, 7), oracle.WithEpsilon(eps), oracle.WithPathReporting())); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.WaitReady(ctx, "g"); err != nil {
		t.Fatal(err)
	}

	for s := int32(0); s < 40; s++ {
		if _, err := r.Dist("g", s); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Path("g", s, (s+37)%160); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Matrix("g", []int32{1, 2, 3}, []int32{4, 5, 6}); err != nil {
		t.Fatal(err)
	}

	st := settle(t, a)
	if st.Sampled == 0 || st.Audited == 0 {
		t.Fatalf("nothing audited: %+v", st)
	}
	if st.Violations != 0 {
		t.Fatalf("clean engine produced violations: %+v", st.ByKind)
	}
	if len(st.Stretch) == 0 {
		t.Fatalf("no stretch observations: %+v", st)
	}
	for _, s := range st.Stretch {
		if s.Max > 1+eps+1e-6 || s.P99 < 1-1e-6 {
			t.Fatalf("stretch out of bounds: %+v", s)
		}
	}
	if st.ExactCacheMisses == 0 {
		t.Fatalf("exact cache never filled: %+v", st)
	}
}

// corruptBackend wraps a real engine and falsifies its answers in
// configurable ways — the auditor must catch every mode.
type corruptBackend struct {
	*oracle.Engine
	distScale float64 // scales every finite distance (0 = honest)
	pathMode  string  // "", "shortcut", "length", "unreach"
}

func (c *corruptBackend) Dist(source int32) ([]float64, error) {
	d, err := c.Engine.Dist(source)
	if err != nil || c.distScale == 0 {
		return d, err
	}
	out := make([]float64, len(d))
	for i, x := range d {
		if math.IsInf(x, 1) {
			out[i] = x
			continue
		}
		out[i] = x * c.distScale
	}
	return out, nil
}

func (c *corruptBackend) Path(u, v int32) ([]int32, float64, error) {
	p, l, err := c.Engine.Path(u, v)
	if err != nil {
		return p, l, err
	}
	switch c.pathMode {
	case "shortcut": // claim a direct hop that is not a graph edge
		if len(p) > 2 {
			return []int32{u, v}, l, nil
		}
	case "length": // valid walk, lied-about length
		return p, l + 1, nil
	case "unreach":
		return nil, math.Inf(1), nil
	}
	return p, l, err
}

func newCorrupt(t *testing.T, g *graph.Graph) *corruptBackend {
	t.Helper()
	eng, err := oracle.New(g, oracle.WithEpsilon(0.25), oracle.WithPathReporting())
	if err != nil {
		t.Fatal(err)
	}
	return &corruptBackend{Engine: eng}
}

// syncBuffer is a mutex-guarded log sink: audit workers write violation
// events from their own goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func auditOne(t *testing.T, be oracle.Backend, run func(r *oracle.Registry)) audit.Stats {
	t.Helper()
	var buf syncBuffer
	a := audit.New(audit.Config{
		SampleRate: 1,
		Logger:     slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	defer a.Close()
	r := oracle.NewRegistry(oracle.RegistryConfig{Audit: a})
	defer r.Close()
	if err := r.AddReady("g", be); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.WaitReady(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	run(r)
	st := settle(t, a)
	if st.Violations > 0 && !strings.Contains(buf.String(), "audit_violation") {
		t.Fatalf("violation not logged as structured event: %q", buf.String())
	}
	return st
}

func TestAuditCatchesStretchViolation(t *testing.T) {
	g := testGraph(120, 3)
	be := newCorrupt(t, g)
	be.distScale = 10 // way past (1+eps)
	st := auditOne(t, be, func(r *oracle.Registry) {
		for s := int32(0); s < 20; s++ {
			if _, err := r.Dist("g", s); err != nil {
				t.Fatal(err)
			}
		}
	})
	if !hasKind(st, audit.ViolationStretch) {
		t.Fatalf("inflated distances not flagged: %+v", st)
	}
}

func TestAuditCatchesUndershoot(t *testing.T) {
	g := testGraph(120, 4)
	be := newCorrupt(t, g)
	be.distScale = 0.5 // impossible: better than exact
	st := auditOne(t, be, func(r *oracle.Registry) {
		for s := int32(0); s < 20; s++ {
			if _, err := r.Dist("g", s); err != nil {
				t.Fatal(err)
			}
		}
	})
	if !hasKind(st, audit.ViolationStretch) {
		t.Fatalf("undershooting distances not flagged: %+v", st)
	}
}

func TestAuditCatchesPathViolations(t *testing.T) {
	g := testGraph(120, 5)
	for mode, kind := range map[string]string{
		"shortcut": audit.ViolationPathInvalid,
		"length":   audit.ViolationPathLength,
		"unreach":  audit.ViolationReachability,
	} {
		be := newCorrupt(t, g)
		be.pathMode = mode
		st := auditOne(t, be, func(r *oracle.Registry) {
			for s := int32(0); s < 30; s++ {
				if _, _, err := r.Path("g", s, (s+53)%120); err != nil {
					t.Fatal(err)
				}
			}
		})
		if !hasKind(st, kind) {
			t.Fatalf("mode %q: want %q violation, got %+v", mode, kind, st.ByKind)
		}
	}
}

func hasKind(st audit.Stats, kind string) bool {
	for _, v := range st.ByKind {
		if v.Kind == kind && v.Count > 0 {
			return true
		}
	}
	return false
}

func TestShouldSampleRates(t *testing.T) {
	off := audit.New(audit.Config{SampleRate: 0, Logger: quietLogger()})
	defer off.Close()
	for i := 0; i < 1000; i++ {
		if off.ShouldSample() {
			t.Fatal("rate 0 sampled")
		}
	}
	on := audit.New(audit.Config{SampleRate: 1, Logger: quietLogger()})
	defer on.Close()
	for i := 0; i < 1000; i++ {
		if !on.ShouldSample() {
			t.Fatal("rate 1 skipped")
		}
	}
	half := audit.New(audit.Config{SampleRate: 0.5, Logger: quietLogger()})
	defer half.Close()
	n := 0
	for i := 0; i < 20000; i++ {
		if half.ShouldSample() {
			n++
		}
	}
	if n < 9000 || n > 11000 {
		t.Fatalf("rate 0.5 sampled %d/20000", n)
	}
}

// Registry.Close drains the auditor: every accepted sample is either
// audited or dropped with its lease released, and the engine's handles
// fully drain afterwards.
func TestRegistryCloseDrainsAudits(t *testing.T) {
	a := audit.New(audit.Config{SampleRate: 1, Workers: 1, Logger: quietLogger()})
	defer a.Close()
	r := oracle.NewRegistry(oracle.RegistryConfig{Audit: a})
	if err := r.Add("g", oracle.GraphSource(testGraph(200, 9), oracle.WithEpsilon(0.3))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.WaitReady(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	for s := int32(0); s < 64; s++ {
		if _, err := r.Dist("g", s); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	st := a.Stats()
	if st.Pending != 0 || st.Audited+st.Dropped+st.Unsupported+st.Errors != st.Sampled {
		t.Fatalf("close left audits in flight: %+v", st)
	}
	// Ours is the only lease left; releasing it must drain the handle.
	h.Release()
	select {
	case <-h.Drained():
	case <-time.After(5 * time.Second):
		t.Fatal("audit leases leaked: handle never drained")
	}
}

func TestAuditMetricsExposition(t *testing.T) {
	a := audit.New(audit.Config{SampleRate: 1, Logger: quietLogger()})
	defer a.Close()
	r := oracle.NewRegistry(oracle.RegistryConfig{Audit: a})
	defer r.Close()
	if err := r.Add("g", oracle.GraphSource(testGraph(100, 11), oracle.WithEpsilon(0.25))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.WaitReady(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	for s := int32(0); s < 10; s++ {
		if _, err := r.Dist("g", s); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, a)

	reg := obs.NewRegistry()
	reg.Register(a.Collect)
	text := string(reg.Gather())
	for _, fam := range []string{
		"spo_audit_samples_total",
		"spo_audit_completed_total",
		"spo_audit_violations_total",
		"spo_audit_stretch_p99",
		"spo_audit_exact_cache_events_total",
	} {
		if !strings.Contains(text, fam) {
			t.Fatalf("metrics missing %s:\n%s", fam, text)
		}
	}
}
