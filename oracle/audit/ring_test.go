package audit

import (
	"sync"
	"testing"

	"repro/oracle"
)

func TestRingFIFOAndCapacity(t *testing.T) {
	var r ring
	r.init(4)
	for i := int32(0); i < 4; i++ {
		if !r.enqueue(oracle.AuditSample{Source: i}) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if r.enqueue(oracle.AuditSample{Source: 99}) {
		t.Fatal("enqueue accepted on a full ring")
	}
	for i := int32(0); i < 4; i++ {
		s, ok := r.dequeue()
		if !ok || s.Source != i {
			t.Fatalf("dequeue %d: ok=%v source=%d", i, ok, s.Source)
		}
	}
	if _, ok := r.dequeue(); ok {
		t.Fatal("dequeue succeeded on an empty ring")
	}
	// Wrap-around reuse.
	if !r.enqueue(oracle.AuditSample{Source: 7}) {
		t.Fatal("enqueue rejected after full drain")
	}
	if s, ok := r.dequeue(); !ok || s.Source != 7 {
		t.Fatalf("wrap-around dequeue: ok=%v source=%d", ok, s.Source)
	}
}

func TestRingConcurrent(t *testing.T) {
	var r ring
	r.init(64)
	const producers, perProducer = 8, 2000
	var got sync.Map
	var wg sync.WaitGroup
	done := make(chan struct{})
	var accepted, consumed int64
	var mu sync.Mutex

	consume := func(s oracle.AuditSample) {
		got.Store(int64(s.Source)<<32|int64(s.Target), true)
		mu.Lock()
		consumed++
		mu.Unlock()
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if s, ok := r.dequeue(); ok {
					consume(s)
					continue
				}
				select {
				case <-done:
					// Producers are finished, but our empty read may
					// predate their last publishes — drain to empty.
					for {
						s, ok := r.dequeue()
						if !ok {
							return
						}
						consume(s)
					}
				default:
				}
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				if r.enqueue(oracle.AuditSample{Source: int32(p), Target: int32(i)}) {
					mu.Lock()
					accepted++
					mu.Unlock()
				}
			}
		}(p)
	}
	pwg.Wait()
	close(done)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if consumed != accepted {
		t.Fatalf("accepted %d but consumed %d", accepted, consumed)
	}
	n := 0
	got.Range(func(_, _ any) bool { n++; return true })
	if int64(n) != consumed {
		t.Fatalf("duplicate or lost samples: %d unique of %d consumed", n, consumed)
	}
}
