package audit_test

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/oracle"
	"repro/oracle/audit"
)

// scaleWeights returns a copy of g with every weight multiplied by f.
func scaleWeights(g *graph.Graph, f float64) *graph.Graph {
	ng := *g
	ng.Wt = make([]float64, len(g.Wt))
	for i, w := range g.Wt {
		ng.Wt[i] = w * f
	}
	ng.Edges = make([]graph.Edge, len(g.Edges))
	for i, ed := range g.Edges {
		ed.W *= f
		ng.Edges[i] = ed
	}
	return &ng
}

// TestAuditChurnHammer is the sample→reload→evict→audit race hammer, run
// under -race in CI. Each reload rebuilds the graph with all weights
// scaled by a fresh factor, so consecutive engine versions answer with
// very different distances: an audit that recomputed its exact baseline
// on any version other than the one that produced the answer would blow
// straight through the 1+ε stretch bound. Zero violations across the
// churn is therefore proof that every audit pinned the answering
// version, not just absence of data races.
func TestAuditChurnHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("churn hammer is a multi-second stress test")
	}
	const (
		nGraphs = 3
		n       = 192
	)
	a := audit.New(audit.Config{
		SampleRate: 1,
		Workers:    4,
		Logger:     slog.New(slog.NewTextHandler(&syncBuffer{}, nil)),
	})
	r := oracle.NewRegistry(oracle.RegistryConfig{
		Audit: a,
		// A budget near two engines' footprint keeps eviction pressure on:
		// warming a cold graph evicts the least-recently-used one, whose
		// in-flight audits must still resolve on their pinned handles.
		EngineOptions: []oracle.Option{oracle.WithPathReporting()},
	})

	names := make([]string, nGraphs)
	for i := 0; i < nGraphs; i++ {
		names[i] = fmt.Sprintf("churn%d", i)
		base := graph.Gnm(n, 3*n, graph.UniformWeights(1, 6), int64(90+i))
		var builds atomic.Int64
		src := func(base *graph.Graph, builds *atomic.Int64) oracle.EngineSource {
			return func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				// Version k serves weights ×(1+k/2): any cross-version
				// audit is at least 1.5× off.
				k := builds.Add(1)
				return oracle.New(scaleWeights(base, 1+float64(k-1)/2), opts...)
			}
		}(base, &builds)
		if err := r.Add(names[i], src); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, name := range names {
		if err := r.WaitReady(ctx, name); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Query hammer: every answered query is sampled (rate 1), so the
	// auditors run flat out while versions churn underneath them.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				name := names[rng.Intn(nGraphs)]
				if rng.Intn(4) == 0 {
					r.Path(name, int32(rng.Intn(n)), int32(rng.Intn(n)))
				} else {
					r.Dist(name, int32(rng.Intn(n)))
				}
			}
		}(int64(w))
	}
	// Reload churn: hot-swap a graph every few milliseconds. Each swap
	// bumps the weight scale, so pinning mistakes become violations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(999))
		tick := time.NewTicker(15 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				name := names[rng.Intn(nGraphs)]
				if rng.Intn(5) == 0 {
					// Remove/re-add: the eviction-shaped transition (engine
					// retires under drain, version counter restarts).
					r.Remove(name)
					// Re-register with a fresh scale sequence.
					base := graph.Gnm(n, 3*n, graph.UniformWeights(1, 6), rng.Int63())
					var builds atomic.Int64
					r.Add(name, func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
						if err := ctx.Err(); err != nil {
							return nil, err
						}
						k := builds.Add(1)
						return oracle.New(scaleWeights(base, 1+float64(k-1)/2), opts...)
					})
				} else {
					r.Reload(name)
				}
			}
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Close drains: queued samples are discarded (their handles released)
	// and in-progress audits finish on their pinned versions.
	r.Close()

	st := a.Stats()
	if st.Audited < 100 {
		t.Fatalf("hammer barely audited anything: %+v", st)
	}
	if st.Violations != 0 {
		t.Fatalf("audits recomputed against the wrong engine version: %+v", st)
	}
	if st.Errors != 0 || st.Unsupported != 0 {
		t.Fatalf("audit errors under churn: %+v", st)
	}
	if st.Pending != 0 {
		t.Fatalf("registry Close left %d audits pending", st.Pending)
	}
	a.Close()
}
