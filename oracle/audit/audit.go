// Package audit is the online correctness layer of the serving stack: a
// shadow auditor that samples a configurable fraction of served answers,
// recomputes exact shortest paths (internal/exact Dijkstra) on the
// engine version that answered — version-pinned through the registry's
// refcounted Handle, so audits never race a hot reload — and converts the
// test suite's (1+ε) stretch story into a production signal: an
// observed-stretch histogram per graph and route, plus hard violation
// counters and structured log events (correlated by trace ID) whenever a
// served answer exceeds its advertised stretch bound or a stitched path
// fails validity or weight-consistency checks.
//
// The serve path records samples into a lock-free bounded ring (a few
// atomic ops per sampled answer; a full ring drops the sample rather than
// blocking a query) and a small background worker pool drains it. Exact
// distance vectors are cached per (graph, version, source), so 100%%
// sampling on a replayed corpus costs one Dijkstra per distinct source,
// not per query.
package audit

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/hist"
	"repro/internal/obs"
	"repro/oracle"
)

// Violation kinds counted and logged by the auditor.
const (
	// ViolationStretch: a served distance (or path length) exceeded its
	// advertised multiplicative stretch bound — or undershot the exact
	// distance, which an admissible oracle can never do.
	ViolationStretch = "stretch"
	// ViolationReachability: the served answer and the exact computation
	// disagree about whether the target is reachable at all.
	ViolationReachability = "reachability"
	// ViolationPathInvalid: a served path has mismatched endpoints or
	// traverses a nonexistent edge.
	ViolationPathInvalid = "path-invalid"
	// ViolationPathLength: a served path's reported length does not equal
	// the sum of its edges' weights in the graph.
	ViolationPathLength = "path-length"
)

// Config shapes an Auditor. The zero value samples nothing.
type Config struct {
	// SampleRate is the fraction of served answers captured, in [0, 1].
	// 1 audits everything (the golden-corpus CI mode); 0 disables.
	SampleRate float64
	// Workers is the background audit pool size (default 2).
	Workers int
	// RingSize bounds the sample queue (default 1024, rounded up to a
	// power of two). A full ring drops new samples — serving latency is
	// never held hostage to audit throughput.
	RingSize int
	// ExactCache bounds the cached exact distance vectors, keyed by
	// (graph, version, source) (default 32 vectors).
	ExactCache int
	// Logger receives structured violation events (default slog.Default).
	Logger *slog.Logger
	// OnResult, when set, observes every completed audit — the SLO
	// engine's stretch-violation feed. Called from audit workers.
	OnResult func(Result)
}

// Result is one completed audit.
type Result struct {
	Graph   string
	Route   string
	Version int64
	TraceID string
	Source  int32
	Target  int32
	Answer  float64
	Exact   float64
	Bound   float64
	// Stretch is Answer/Exact when both are finite and Exact > 0, else 0.
	Stretch float64
	// Violation names the failed check ("" = the answer checked out).
	Violation string
	// Detail elaborates a violation for the log event.
	Detail string
}

// relTol is the relative floating-point slack allowed on every bound
// check: routed answers sum dozens of float64 legs, so exact equality of
// independently-ordered summations is not the contract — the (1+ε)
// guarantee is, modulo accumulated rounding.
const relTol = 1e-9

// Auditor implements oracle.AuditSink: a lock-free sample ring drained by
// a bounded worker pool that recomputes exact answers and keeps the
// observed-stretch accounting.
type Auditor struct {
	cfg    Config
	rateP  uint64 // sample threshold out of 2^20
	ring   ring
	wake   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	seq      atomic.Uint64
	sampled  atomic.Int64
	audited  atomic.Int64
	dropped  atomic.Int64
	unsup    atomic.Int64
	errs     atomic.Int64
	busy     atomic.Int64 // workers currently inside one audit
	draining atomic.Bool
	closed   atomic.Bool

	exact exactCache

	mu         sync.Mutex
	stretch    map[histKey]*hist.Histogram
	violations map[violKey]int64
}

type histKey struct{ graph, route string }
type violKey struct{ graph, kind string }

// New builds an Auditor and starts its worker pool. Close it when done.
func New(cfg Config) *Auditor {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.ExactCache <= 0 {
		cfg.ExactCache = 32
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	a := &Auditor{
		cfg:        cfg,
		rateP:      uint64(cfg.SampleRate * (1 << 20)),
		wake:       make(chan struct{}, 1),
		stretch:    make(map[histKey]*hist.Histogram),
		violations: make(map[violKey]int64),
	}
	a.ring.init(cfg.RingSize)
	a.exact.init(cfg.ExactCache)
	a.ctx, a.cancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		a.wg.Add(1)
		go a.worker()
	}
	return a
}

// ShouldSample implements oracle.AuditSink: one atomic add and a hash —
// the entire cost an unsampled query pays. The sequence counter is hashed
// (splitmix-style) so sampling is spread uniformly rather than striding.
func (a *Auditor) ShouldSample() bool {
	if a == nil || a.rateP == 0 || a.draining.Load() {
		return false
	}
	if a.rateP >= 1<<20 {
		return true
	}
	x := a.seq.Add(1)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x&(1<<20-1) < a.rateP
}

// Sample implements oracle.AuditSink: enqueue one answer for background
// auditing. The sample's retained handle lease is owned by the auditor
// from here on — released after the audit, or immediately when the ring
// is full and the sample is dropped.
func (a *Auditor) Sample(s oracle.AuditSample) {
	if a.draining.Load() || !a.ring.enqueue(s) {
		a.dropped.Add(1)
		s.Handle.Release()
		return
	}
	a.sampled.Add(1)
	select {
	case a.wake <- struct{}{}:
	default:
	}
}

// worker drains the ring until the auditor is closed.
func (a *Auditor) worker() {
	defer a.wg.Done()
	for {
		s, ok := a.ring.dequeue()
		if ok {
			a.busy.Add(1)
			a.audit(s)
			a.busy.Add(-1)
			continue
		}
		select {
		case <-a.ctx.Done():
			return
		case <-a.wake:
		}
	}
}

// Drain implements oracle.AuditSink: stop accepting samples, discard the
// queue (releasing the handle leases), and wait for in-flight audits to
// finish. Called by Registry.Close; the worker pool stays alive (Close
// tears it down), so an auditor shared across registries keeps serving
// the others — but in the common one-registry wiring Drain is the
// shutdown barrier that guarantees no audit outlives the serving process.
func (a *Auditor) Drain() {
	if a == nil {
		return
	}
	a.draining.Store(true)
	for {
		if s, ok := a.ring.dequeue(); ok {
			a.dropped.Add(1)
			s.Handle.Release()
			continue
		}
		if a.busy.Load() == 0 {
			// Re-check: a worker may have dequeued between our empty read
			// and its busy increment.
			if _, ok := a.ring.dequeue(); !ok {
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
}

// Close drains and stops the worker pool. Idempotent.
func (a *Auditor) Close() {
	if a == nil || a.closed.Swap(true) {
		return
	}
	a.Drain()
	a.cancel()
	a.wg.Wait()
	// Workers may have dequeued-but-unprocessed nothing past Drain, but a
	// sample enqueued concurrently with Drain could still sit in the
	// ring; sweep once more so every lease is returned.
	for {
		s, ok := a.ring.dequeue()
		if !ok {
			return
		}
		a.dropped.Add(1)
		s.Handle.Release()
	}
}

// audit recomputes one sample exactly and records the verdict.
func (a *Auditor) audit(s oracle.AuditSample) {
	defer s.Handle.Release()
	res := Result{
		Graph: s.Graph, Route: s.Route, Version: s.Handle.Version(),
		TraceID: s.TraceID, Source: s.Source, Target: s.Target, Answer: s.Answer,
	}
	ab, ok := s.Handle.Engine().(oracle.AuditableBackend)
	if !ok {
		a.unsup.Add(1)
		return
	}
	g, err := ab.AuditGraph()
	if err != nil {
		a.errs.Add(1)
		a.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "audit graph unavailable",
			slog.String("graph", s.Graph), slog.String("error", err.Error()))
		return
	}
	if int(s.Source) >= g.N || int(s.Target) >= g.N || s.Source < 0 || s.Target < 0 {
		a.errs.Add(1)
		return
	}
	distBound, pathBound := ab.StretchBounds()
	bound := distBound
	if s.Route == "path" {
		bound = pathBound
	}
	res.Bound = bound

	dist := a.exact.get(s.Graph, res.Version, s.Source, g)
	res.Exact = dist[s.Target]

	res.Violation, res.Detail = check(g, s, res.Exact, bound)
	if res.Violation == "" && !math.IsInf(res.Exact, 1) && res.Exact > 0 {
		res.Stretch = res.Answer / res.Exact
	}
	a.record(res)
	if a.cfg.OnResult != nil {
		a.cfg.OnResult(res)
	}
}

// check runs the correctness checks for one sample against the exact
// distance and returns the violation kind and detail ("" = pass).
func check(g *graph.Graph, s oracle.AuditSample, exactD, bound float64) (kind, detail string) {
	ansInf, exInf := math.IsInf(s.Answer, 1), math.IsInf(exactD, 1)
	if ansInf != exInf {
		return ViolationReachability,
			fmt.Sprintf("served %v but exact %v", s.Answer, exactD)
	}
	if s.Route == "path" && !ansInf {
		if k, d := checkPath(g, s); k != "" {
			return k, d
		}
	}
	if ansInf {
		return "", ""
	}
	slack := relTol * math.Max(1, exactD)
	if s.Answer < exactD-slack {
		return ViolationStretch,
			fmt.Sprintf("served %v undershoots exact %v", s.Answer, exactD)
	}
	if s.Answer > bound*exactD+slack {
		return ViolationStretch,
			fmt.Sprintf("served %v exceeds bound %.4f x exact %v = %v", s.Answer, bound, exactD, bound*exactD)
	}
	return "", ""
}

// checkPath validates a served path: endpoints, edge existence, and
// weight consistency of the reported length.
func checkPath(g *graph.Graph, s oracle.AuditSample) (kind, detail string) {
	p := s.Path
	if len(p) == 0 {
		return ViolationPathInvalid, "empty path for a reachable pair"
	}
	if p[0] != s.Source || p[len(p)-1] != s.Target {
		return ViolationPathInvalid,
			fmt.Sprintf("endpoints %d..%d do not match query %d..%d", p[0], p[len(p)-1], s.Source, s.Target)
	}
	var sum float64
	for i := 1; i < len(p); i++ {
		w, ok := g.HasEdge(p[i-1], p[i])
		if !ok {
			return ViolationPathInvalid,
				fmt.Sprintf("hop %d: (%d,%d) is not a graph edge", i, p[i-1], p[i])
		}
		sum += w
	}
	if diff := math.Abs(sum - s.Answer); diff > relTol*math.Max(1, sum) {
		return ViolationPathLength,
			fmt.Sprintf("edge weights sum to %v but length %v was reported", sum, s.Answer)
	}
	return "", ""
}

// record books one audited result: the observed-stretch histogram and,
// on violation, the counter and structured event.
func (a *Auditor) record(res Result) {
	a.audited.Add(1)
	if res.Stretch > 0 {
		a.stretchHist(res.Graph, res.Route).Observe(stretchToDuration(res.Stretch))
	}
	if res.Violation == "" {
		return
	}
	a.mu.Lock()
	a.violations[violKey{res.Graph, res.Violation}]++
	a.mu.Unlock()
	a.cfg.Logger.LogAttrs(context.Background(), slog.LevelError, "stretch audit violation",
		slog.String("event", "audit_violation"),
		slog.String("graph", res.Graph),
		slog.String("route", res.Route),
		slog.String("kind", res.Violation),
		slog.Int64("version", res.Version),
		slog.String("trace_id", res.TraceID),
		slog.Int64("source", int64(res.Source)),
		slog.Int64("target", int64(res.Target)),
		slog.Float64("answer", res.Answer),
		slog.Float64("exact", res.Exact),
		slog.Float64("bound", res.Bound),
		slog.String("detail", res.Detail),
	)
}

func (a *Auditor) stretchHist(graph, route string) *hist.Histogram {
	k := histKey{graph, route}
	a.mu.Lock()
	defer a.mu.Unlock()
	h := a.stretch[k]
	if h == nil {
		h = &hist.Histogram{}
		a.stretch[k] = h
	}
	return h
}

// stretchToDuration maps a stretch ratio onto the microsecond histogram:
// 1 stretch unit = 1 second, so a snapshot's P99Us/1e6 reads back as the
// p99 observed stretch with 1e-6 granularity.
func stretchToDuration(ratio float64) time.Duration {
	return time.Duration(ratio * float64(time.Second))
}

// StretchSnapshot is one (graph, route) observed-stretch summary, in
// stretch units (1.0 = exact).
type StretchSnapshot struct {
	Graph string  `json:"graph"`
	Route string  `json:"route"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// ViolationCount is one (graph, kind) violation tally.
type ViolationCount struct {
	Graph string `json:"graph"`
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// Stats is the auditor's point-in-time accounting.
type Stats struct {
	// Sampled counts answers accepted into the ring; Audited the ones
	// whose exact recompute completed; Dropped the ring-full (or drain)
	// discards; Unsupported samples whose backend cannot provide an audit
	// graph; Errors audit-side failures (not serving violations).
	Sampled     int64 `json:"sampled"`
	Audited     int64 `json:"audited"`
	Dropped     int64 `json:"dropped"`
	Unsupported int64 `json:"unsupported"`
	Errors      int64 `json:"errors"`
	// Violations is the total across kinds; per-kind tallies follow.
	Violations int64            `json:"violations"`
	ByKind     []ViolationCount `json:"by_kind,omitempty"`
	// Stretch is the observed-stretch summary per graph/route.
	Stretch []StretchSnapshot `json:"stretch,omitempty"`
	// ExactCache is the exact-vector cache traffic.
	ExactCacheHits   int64 `json:"exact_cache_hits"`
	ExactCacheMisses int64 `json:"exact_cache_misses"`
	// Pending is the current ring depth.
	Pending int64 `json:"pending"`
}

// Stats snapshots the auditor.
func (a *Auditor) Stats() Stats {
	st := Stats{
		Sampled:          a.sampled.Load(),
		Audited:          a.audited.Load(),
		Dropped:          a.dropped.Load(),
		Unsupported:      a.unsup.Load(),
		Errors:           a.errs.Load(),
		ExactCacheHits:   a.exact.hits.Load(),
		ExactCacheMisses: a.exact.misses.Load(),
		Pending:          a.ring.len(),
	}
	a.mu.Lock()
	for k, n := range a.violations {
		st.Violations += n
		st.ByKind = append(st.ByKind, ViolationCount{Graph: k.graph, Kind: k.kind, Count: n})
	}
	for k, h := range a.stretch {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		st.Stretch = append(st.Stretch, StretchSnapshot{
			Graph: k.graph, Route: k.route, Count: snap.Count,
			Mean: snap.MeanUs / 1e6,
			P50:  float64(snap.P50Us) / 1e6,
			P99:  float64(snap.P99Us) / 1e6,
			Max:  float64(snap.MaxUs) / 1e6,
		})
	}
	a.mu.Unlock()
	sort.Slice(st.ByKind, func(i, j int) bool {
		if st.ByKind[i].Graph != st.ByKind[j].Graph {
			return st.ByKind[i].Graph < st.ByKind[j].Graph
		}
		return st.ByKind[i].Kind < st.ByKind[j].Kind
	})
	sort.Slice(st.Stretch, func(i, j int) bool {
		if st.Stretch[i].Graph != st.Stretch[j].Graph {
			return st.Stretch[i].Graph < st.Stretch[j].Graph
		}
		return st.Stretch[i].Route < st.Stretch[j].Route
	})
	return st
}

// Collect is the auditor's /metrics collector.
func (a *Auditor) Collect(w *obs.MetricWriter) {
	st := a.Stats()
	w.Counter("spo_audit_samples_total", "Served answers accepted for shadow auditing.", float64(st.Sampled))
	w.Counter("spo_audit_completed_total", "Shadow audits whose exact recompute finished.", float64(st.Audited))
	w.Counter("spo_audit_dropped_total", "Samples dropped on a full audit ring.", float64(st.Dropped))
	w.Counter("spo_audit_unsupported_total", "Samples whose backend exposes no audit graph.", float64(st.Unsupported))
	w.Counter("spo_audit_errors_total", "Audit-side failures (not serving violations).", float64(st.Errors))
	w.Gauge("spo_audit_pending", "Samples queued in the audit ring.", float64(st.Pending))
	w.Counter("spo_audit_exact_cache_events_total", "Exact-vector cache traffic.", float64(st.ExactCacheHits), obs.L("event", "hit"))
	w.Counter("spo_audit_exact_cache_events_total", "Exact-vector cache traffic.", float64(st.ExactCacheMisses), obs.L("event", "miss"))
	// The violation family is always emitted — a scraper alerting on
	// increase() must be able to discover it at zero.
	if len(st.ByKind) == 0 {
		w.Counter("spo_audit_violations_total", "Audited answers that failed a correctness check.", 0,
			obs.L("graph", ""), obs.L("kind", ViolationStretch))
	}
	for _, v := range st.ByKind {
		w.Counter("spo_audit_violations_total", "Audited answers that failed a correctness check.",
			float64(v.Count), obs.L("graph", v.Graph), obs.L("kind", v.Kind))
	}
	for _, s := range st.Stretch {
		labels := []obs.Label{obs.L("graph", s.Graph), obs.L("route", s.Route)}
		w.Gauge("spo_audit_stretch_p99", "Observed p99 stretch (served/exact) of audited answers.", s.P99, labels...)
		w.Gauge("spo_audit_stretch_max", "Observed max stretch of audited answers.", s.Max, labels...)
		w.Counter("spo_audit_stretch_observations_total", "Audited answers with a finite positive exact distance.", float64(s.Count), labels...)
	}
}

var _ oracle.AuditSink = (*Auditor)(nil)

// exactCache is a small mutex-guarded LRU of exact distance vectors keyed
// by (graph, version, source) — the working set of a shadow audit is the
// recently-served sources, and one Dijkstra per distinct source is the
// whole audit cost at 100%% sampling on a replayed corpus.
type exactCache struct {
	mu     sync.Mutex
	cap    int
	order  []exactKey
	m      map[exactKey][]float64
	hits   atomic.Int64
	misses atomic.Int64
}

type exactKey struct {
	graph   string
	version int64
	source  int32
}

func (c *exactCache) init(capacity int) {
	c.cap = capacity
	c.m = make(map[exactKey][]float64, capacity)
}

// get returns the exact distance vector for (graph, version, source),
// computing it on g on a miss. Concurrent misses on the same key may both
// compute — acceptable: the result is identical and the cache is a cost
// bound, not a consistency mechanism.
func (c *exactCache) get(name string, version int64, source int32, g *graph.Graph) []float64 {
	k := exactKey{name, version, source}
	c.mu.Lock()
	if d, ok := c.m[k]; ok {
		c.hits.Add(1)
		c.mu.Unlock()
		return d
	}
	c.mu.Unlock()
	c.misses.Add(1)
	d, _ := exact.DijkstraGraph(g, source)
	c.mu.Lock()
	if _, ok := c.m[k]; !ok {
		if len(c.order) >= c.cap {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.m, oldest)
		}
		c.order = append(c.order, k)
		c.m[k] = d
	}
	d = c.m[k]
	c.mu.Unlock()
	return d
}
