package oracle

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func testGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	return graph.Gnm(n, 4*n, graph.UniformWeights(1, 8), 42)
}

// TestConcurrentDistMatchesSequential is the determinism-under-concurrency
// guarantee: many goroutines hammering Engine.Dist must observe results
// bit-identical to the sequential Solver's (run with -race).
func TestConcurrentDistMatchesSequential(t *testing.T) {
	g := testGraph(t, 400)
	eng, err := New(g, WithEpsilon(0.25), WithDistCache(8))
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.New(g, core.Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	sources := []int32{0, 7, 99, 200, 399}
	ref := make(map[int32][]float64, len(sources))
	for _, s := range sources {
		d, err := solver.ApproxDistances(s)
		if err != nil {
			t.Fatal(err)
		}
		ref[s] = d
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i := range sources {
					s := sources[(i+w)%len(sources)]
					got, err := eng.Dist(s)
					if err != nil {
						errs <- err
						return
					}
					want := ref[s]
					for v := range want {
						if got[v] != want[v] {
							t.Errorf("worker %d: Dist(%d)[%d] = %v, sequential %v", w, s, v, got[v], want[v])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.DistQueries != workers*3*int64(len(sources)) {
		t.Errorf("DistQueries = %d, want %d", st.DistQueries, workers*3*len(sources))
	}
	if st.DistCache.Hits == 0 {
		t.Error("expected cache hits from repeated concurrent queries")
	}
}

// TestConcurrentPathMatchesSequential hammers Path/Tree concurrently and
// compares against the sequential Solver's SPTs.
func TestConcurrentPathMatchesSequential(t *testing.T) {
	g := testGraph(t, 250)
	eng, err := New(g, WithEpsilon(0.3), WithPathReporting(), WithTreeCache(4))
	if err != nil {
		t.Fatal(err)
	}
	solver, err := core.New(g, core.Options{Epsilon: 0.3, PathReporting: true})
	if err != nil {
		t.Fatal(err)
	}
	roots := []int32{0, 100, 249}
	refDist := make(map[int32][]float64, len(roots))
	for _, s := range roots {
		spt, err := solver.SPT(s)
		if err != nil {
			t.Fatal(err)
		}
		refDist[s] = spt.Dist
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, u := range roots {
				tr, err := eng.Tree(roots[(i+w)%len(roots)])
				if err != nil {
					t.Error(err)
					return
				}
				want := refDist[tr.Source]
				for v := range want {
					if tr.Dist[v] != want[v] {
						t.Errorf("Tree(%d).Dist[%d] = %v, sequential %v", tr.Source, v, tr.Dist[v], want[v])
						return
					}
				}
				v := int32((int(u) + 31*w) % eng.N())
				path, length, err := eng.Path(u, v)
				if err != nil {
					t.Error(err)
					return
				}
				if math.IsInf(length, 1) {
					if path != nil {
						t.Errorf("Path(%d,%d): unreachable but non-nil path", u, v)
					}
					continue
				}
				if len(path) == 0 || path[0] != u || path[len(path)-1] != v {
					t.Errorf("Path(%d,%d) endpoints wrong: %v", u, v, path)
					return
				}
				if length != refDist[u][v] {
					t.Errorf("Path(%d,%d) length %v, sequential %v", u, v, length, refDist[u][v])
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestMultiSourceUsesAndFillsCache(t *testing.T) {
	g := testGraph(t, 200)
	eng, err := New(g, WithDistCache(16))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := eng.MultiSource([]int32{1, 5, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Duplicate sources share one computed row.
	if &rows[1][0] != &rows[2][0] {
		t.Error("duplicate sources should share the same cached row")
	}
	// A following Dist on any of them is a hit.
	before := eng.Stats().DistCache.Hits
	if _, err := eng.Dist(9); err != nil {
		t.Fatal(err)
	}
	if hits := eng.Stats().DistCache.Hits - before; hits != 1 {
		t.Errorf("Dist after MultiSource: %d hits, want 1", hits)
	}
	// And MultiSource itself reuses cached rows.
	d1, err := eng.Dist(1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := eng.MultiSource([]int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if &again[0][0] != &d1[0] {
		t.Error("MultiSource should serve cached row for source 1")
	}
}

func TestTypedErrors(t *testing.T) {
	g := testGraph(t, 50)
	eng, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Dist(-1); !errors.Is(err, ErrVertexOutOfRange) {
		t.Errorf("Dist(-1): %v, want ErrVertexOutOfRange", err)
	}
	if _, err := eng.Dist(50); !errors.Is(err, ErrVertexOutOfRange) {
		t.Errorf("Dist(50): %v, want ErrVertexOutOfRange", err)
	}
	if _, err := eng.DistTo(0, 99); !errors.Is(err, ErrVertexOutOfRange) {
		t.Errorf("DistTo(0,99): %v, want ErrVertexOutOfRange", err)
	}
	if _, _, err := eng.Path(0, 1); !errors.Is(err, ErrNeedPathReporting) {
		t.Errorf("Path without WithPathReporting: %v, want ErrNeedPathReporting", err)
	}
	if _, err := eng.Tree(0); !errors.Is(err, ErrNeedPathReporting) {
		t.Errorf("Tree without WithPathReporting: %v, want ErrNeedPathReporting", err)
	}
	if _, err := eng.MultiSource(nil); !errors.Is(err, ErrNeedSources) {
		t.Errorf("MultiSource(nil): %v, want ErrNeedSources", err)
	}
	if _, err := eng.Nearest(nil); !errors.Is(err, ErrNeedSources) {
		t.Errorf("Nearest(nil): %v, want ErrNeedSources", err)
	}

	var zero Engine
	if _, err := zero.Dist(0); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("zero-value engine: %v, want ErrNotBuilt", err)
	}
	var nilEng *Engine
	if _, err := nilEng.Dist(0); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("nil engine: %v, want ErrNotBuilt", err)
	}
	if got := nilEng.Stats(); !reflect.DeepEqual(got, Stats{}) {
		t.Errorf("nil engine Stats() = %+v, want zero", got)
	}
}

func TestNewFromEdges(t *testing.T) {
	eng, err := NewFromEdges(4, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.DistTo(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Path graph: exact distance 3; ε=0.25 allows up to 3.75.
	if d < 3 || d > 3.75 {
		t.Errorf("DistTo(0,3) = %v, want within [3, 3.75]", d)
	}
	if eng.N() != 4 {
		t.Errorf("N() = %d", eng.N())
	}
}
