package oracle

import (
	"context"
	"fmt"

	"repro/internal/obs"
)

// SWRResult is one stale-while-revalidate answer: a full distance row,
// the engine version that produced it, and whether that version predates
// the graph's current one. Every value in one result comes from the one
// immutable engine identified by Version — versions are never mixed
// within a response, which is why SWR is offered only for single-source
// surfaces (a multi-source answer assembled from cached rows could
// otherwise straddle a reload).
type SWRResult struct {
	Dist    []float64
	Version int64
	Stale   bool
}

// DistSWR serves Engine.Dist through the hot-pair cache with
// stale-while-revalidate semantics:
//
//   - fresh hit — the cached row's version matches the graph's current
//     version: answered with two atomic loads and one striped map
//     lookup, no handle acquired, no registry or entry mutex taken;
//   - stale hit — the row predates the current version (a hot reload or
//     rebuild published a newer engine): the old row is served
//     immediately, tagged Stale, and a bounded background revalidation
//     recomputes it on the current engine so a subsequent query turns
//     fresh. While a graph is evicted or mid-rebuild, stale rows keep
//     answering — tail latency is bounded by the cache, not the build;
//   - miss — the row is computed synchronously through a pinned handle
//     (exactly Registry.Dist) and inserted at that handle's version.
//
// Callers that must never observe stale data should use Registry.Dist,
// whose semantics are unchanged. With the hot-pair cache disabled,
// DistSWR degrades to exactly that.
func (r *Registry) DistSWR(name string, source int32) (SWRResult, error) {
	return r.DistSWRContext(context.Background(), name, source)
}

// DistSWRContext is DistSWR with a request context: cancellation and the
// active trace span (if any) flow into context-aware backends, and the
// span — when one rides in ctx — is annotated with the cache
// disposition, serving version, and (for monolithic engines on the miss
// path) the scanned-arc cost of the exploration. The fresh-hit fast path
// adds no allocations.
func (r *Registry) DistSWRContext(ctx context.Context, name string, source int32) (SWRResult, error) {
	sp := obs.FromContext(ctx)
	if sp.Active() {
		sp.Source = int64(source)
	}
	if r.hot == nil {
		h, err := r.Acquire(name)
		if err != nil {
			return SWRResult{}, err
		}
		defer h.Release()
		d, err := r.backendDist(ctx, sp, h, source)
		if err != nil {
			return SWRResult{}, err
		}
		r.auditDist(ctx, name, h, source, d)
		return SWRResult{Dist: d, Version: h.Version()}, nil
	}

	e, err := r.lookup(name)
	if err != nil {
		return SWRResult{}, err
	}
	dist, ver, ok := r.hot.get(name, source)
	if ok {
		cur := e.curVer.Load()
		if ver == cur {
			r.hot.hits.Add(1)
			e.lastUsed.Store(r.clock.Add(1))
			e.queries.Add(1)
			r.queries.Add(1)
			if sp.Active() {
				sp.SWR = "fresh"
				sp.Version = ver
			}
			return SWRResult{Dist: dist, Version: ver}, nil
		}
		// The row predates the current version: serve it stale and warm
		// the current engine off the request path.
		r.hot.staleHits.Add(1)
		e.lastUsed.Store(r.clock.Add(1))
		e.queries.Add(1)
		r.queries.Add(1)
		r.spawnRevalidate(name, source)
		if sp.Active() {
			sp.SWR = "stale"
			sp.Version = ver
		}
		return SWRResult{Dist: dist, Version: ver, Stale: true}, nil
	}

	// Miss: compute through a pinned handle. If the graph is evicted the
	// Acquire both reports not-ready and enqueues the rebuild — but a
	// stale row for this source would have been served above, so a miss
	// during an outage is a genuinely-cold pair.
	r.hot.misses.Add(1)
	if sp.Active() {
		sp.SWR = "miss"
	}
	h, err := r.Acquire(name)
	if err != nil {
		return SWRResult{}, err
	}
	defer h.Release()
	d, err := r.backendDist(ctx, sp, h, source)
	if err != nil {
		return SWRResult{}, err
	}
	r.hot.put(name, source, d, h.Version())
	// Audit on the fill path only: cache hits re-serve bits that were
	// sampled when the row was computed, so re-auditing them would burn
	// exact recomputations on already-checked answers (stale hits are
	// instead accounted by the SLO stale-serve rate).
	r.auditDist(ctx, name, h, source, d)
	return SWRResult{Dist: d, Version: h.Version()}, nil
}

// backendDist runs one dist computation through a pinned handle,
// annotating an active span with the serving version and — for
// monolithic engines — the scanned-arc delta of the exploration. The
// delta is read from the engine's process-wide counter, so concurrent
// queries can inflate an individual span's value; it is a tracing
// attribute, not an accounting invariant.
func (r *Registry) backendDist(ctx context.Context, sp *obs.Span, h *Handle, source int32) ([]float64, error) {
	be := h.Engine()
	if !sp.Active() {
		return distVia(ctx, be, source)
	}
	sp.Version = h.Version()
	eng, _ := be.(*Engine)
	before := eng.scannedArcs()
	d, err := distVia(ctx, be, source)
	if eng != nil {
		sp.ScannedArcs += eng.scannedArcs() - before
	}
	sp.SetError(err)
	return d, err
}

// DistToSWR is DistSWR for a single (source, target) scalar; it shares
// rows — and therefore hits — with DistSWR.
func (r *Registry) DistToSWR(name string, source, target int32) (float64, int64, bool, error) {
	return r.DistToSWRContext(context.Background(), name, source, target)
}

// DistToSWRContext is DistToSWR with a request context.
func (r *Registry) DistToSWRContext(ctx context.Context, name string, source, target int32) (float64, int64, bool, error) {
	res, err := r.DistSWRContext(ctx, name, source)
	if err != nil {
		return 0, 0, false, err
	}
	if target < 0 || int(target) >= len(res.Dist) {
		return 0, 0, false, fmt.Errorf("%w: vertex %d not in [0,%d)", ErrVertexOutOfRange, target, len(res.Dist))
	}
	return res.Dist[target], res.Version, res.Stale, nil
}

// spawnRevalidate recomputes one row on the graph's current engine in
// the background: singleflight per key, bounded globally (maxReval), and
// registered with the registry's shutdown WaitGroup so Close drains
// revalidations exactly like builds. A not-ready graph ends the attempt
// — the Acquire already enqueued its rebuild, and the next stale hit
// retries.
func (r *Registry) spawnRevalidate(name string, source int32) {
	k := hotKey{name, source}
	if !r.hot.tryClaimReval(k) {
		return
	}
	r.buildMu.Lock()
	if r.noBuilds {
		r.buildMu.Unlock()
		r.hot.releaseReval(k)
		return
	}
	r.wg.Add(1)
	r.buildMu.Unlock()
	go func() {
		defer r.wg.Done()
		defer r.hot.releaseReval(k)
		h, err := r.Acquire(name)
		if err != nil {
			return
		}
		defer h.Release()
		d, err := h.Engine().Dist(source)
		if err != nil {
			return
		}
		r.hot.put(name, source, d, h.Version())
		r.hot.revalidations.Add(1)
	}()
}
