package oracle

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestSnapshotRoundTrip: a revived engine must answer every query
// bit-identically to the engine that wrote the snapshot — including path
// queries, whose memory paths travel with the hopset.
func TestSnapshotRoundTrip(t *testing.T) {
	g := graph.Gnm(300, 1200, graph.UniformWeights(2, 9), 7)
	eng, err := New(g, WithEpsilon(0.3), WithPathReporting())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	got, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != eng.N() {
		t.Fatalf("revived N = %d, want %d", got.N(), eng.N())
	}
	if got.HopBudget() != eng.HopBudget() {
		t.Errorf("revived HopBudget = %d, want %d", got.HopBudget(), eng.HopBudget())
	}
	for _, s := range []int32{0, 100, 299} {
		want, err := eng.Dist(s)
		if err != nil {
			t.Fatal(err)
		}
		d, err := got.Dist(s)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if d[v] != want[v] {
				t.Fatalf("revived Dist(%d)[%d] = %v, want %v", s, v, d[v], want[v])
			}
		}
	}
	wantPath, wantLen, err := eng.Path(0, 299)
	if err != nil {
		t.Fatal(err)
	}
	gotPath, gotLen, err := got.Path(0, 299)
	if err != nil {
		t.Fatal(err)
	}
	if gotLen != wantLen || len(gotPath) != len(wantPath) {
		t.Fatalf("revived Path(0,299) = %d hops/%v, want %d hops/%v",
			len(gotPath), gotLen, len(wantPath), wantLen)
	}
	for i := range wantPath {
		if gotPath[i] != wantPath[i] {
			t.Fatalf("revived path diverges at hop %d", i)
		}
	}
}

// TestSnapshotRescaling: a graph whose minimum weight ≠ 1 exercises the
// scale-factor round trip (the hopset stores normalized distances).
func TestSnapshotRescaling(t *testing.T) {
	g := graph.Gnm(150, 600, graph.UniformWeights(10, 80), 3)
	eng, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := eng.Dist(0)
	d, _ := got.Dist(0)
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("rescaled Dist(0)[%d] = %v, want %v", v, d[v], want[v])
		}
	}
}

func TestSnapshotUnsupportedForWeightReduction(t *testing.T) {
	g := graph.Gnm(120, 500, graph.GeometricScaleWeights(12), 5)
	eng, err := New(g, WithEpsilon(0.5), WithWeightReduction())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveSnapshot(&bytes.Buffer{}); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Errorf("SaveSnapshot = %v, want ErrSnapshotUnsupported", err)
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not a snapshot\n",
		"oraclesnap 99 1 0 0\n",
		"oraclesnap 1 1 5 5\nxx", // truncated sections
	} {
		if _, err := LoadSnapshot(strings.NewReader(in)); err == nil {
			t.Errorf("LoadSnapshot(%q) succeeded", in)
		}
	}
}
