package oracle

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// RemoteBackend is an HTTP client implementing the full Backend (and
// MatrixBackend, OffsetBackend) surface against another serve process's
// /graphs/{name}/* routes — the seam that lets per-shard engines live in
// separate processes while the registry, Handle pinning, and eviction
// work unchanged: a RemoteBackend is registered, hot-reloaded, and
// queried exactly like a local engine.
//
// Typed errors round-trip: a sentinel raised in the remote process is
// encoded as a wire code by writeError and decoded back here, so
// errors.Is(err, ErrUnsupported), ErrVertexOutOfRange, ErrGraphNotReady,
// … match exactly as they would in-process. Failures with no typed
// sentinel (transport errors, unexpected statuses) wrap ErrRemote, which
// is the router's signal that another replica may succeed.
//
// Answers are bit-identical to the remote engine's: Go's JSON encoder
// emits the shortest float64 representation that parses back exactly, so
// a distance survives the hop bit-for-bit, and +Inf (unreachable) maps to
// null and back.
//
// RemoteBackend is stateless per call and safe for concurrent use. The
// *Context method variants take a caller context so hedged requests can
// be canceled when a sibling replica answers first.
type RemoteBackend struct {
	base   string // endpoint base URL, no trailing slash
	graph  string // remote graph name
	client *http.Client

	// info caches the remote GraphInfo for N/MemoryBytes/Describe; it is
	// fetched lazily and refreshed at most every infoTTL so status polls
	// do not hammer the worker.
	infoMu   sync.Mutex
	info     GraphInfo
	infoAt   time.Time
	infoOnce bool
}

// infoTTL bounds how stale the cached remote GraphInfo may be before
// Describe/MemoryBytes refresh it.
const infoTTL = 5 * time.Second

// NewRemoteBackend returns a client for graph name served at the base
// URL (scheme://host:port). A nil client uses a dedicated http.Client
// with a 60s overall timeout; pass one to tune transport pooling or
// per-attempt timeouts.
func NewRemoteBackend(baseURL, name string, client *http.Client) *RemoteBackend {
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	return &RemoteBackend{
		base:   strings.TrimRight(baseURL, "/"),
		graph:  name,
		client: client,
	}
}

// URL returns the endpoint base URL this backend talks to.
func (b *RemoteBackend) URL() string { return b.base }

// Graph returns the remote graph name this backend queries.
func (b *RemoteBackend) Graph() string { return b.graph }

// RemoteError is the decoded failure of one remote call. Unwrap returns
// the typed sentinel the wire code names (or ErrRemote when there is
// none), so errors.Is matches through it.
type RemoteError struct {
	Status int    // HTTP status, 0 for transport failures
	Code   string // wire code ("" when the remote sent none)
	Msg    string // remote error message or transport error text
}

func (e *RemoteError) Error() string {
	if e.Status == 0 {
		return "oracle: remote: " + e.Msg
	}
	return fmt.Sprintf("oracle: remote [%d]: %s", e.Status, e.Msg)
}

func (e *RemoteError) Unwrap() error {
	if s := sentinelForCode(e.Code); s != nil {
		return s
	}
	// No code (old server, proxy error page): fall back on the status
	// classes writeError uses, so the common sentinels still match.
	switch e.Status {
	case http.StatusNotImplemented:
		return ErrUnsupported
	case http.StatusNotFound:
		return ErrUnknownGraph
	case http.StatusServiceUnavailable:
		return ErrGraphNotReady
	}
	return ErrRemote
}

// IsRemoteTransient reports whether err is worth retrying on another
// replica: transport failures and 5xx-class remote states (not-ready,
// overloaded), as opposed to typed 4xx/501 answers that every replica
// would repeat.
func IsRemoteTransient(err error) bool {
	var re *RemoteError
	if !errors.As(err, &re) {
		return false
	}
	switch {
	case re.Status == 0: // transport: connection refused, reset, timeout
		return true
	case re.Status >= 500 && re.Status != http.StatusNotImplemented:
		return true
	case re.Status == http.StatusTooManyRequests:
		return true
	}
	return false
}

// do runs one HTTP round-trip and decodes the JSON response into out.
// Non-2xx responses become *RemoteError with the wire code preserved.
func (b *RemoteBackend) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		enc, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("%w: encode request: %v", ErrRemote, err)
		}
		rd = bytes.NewReader(enc)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, rd)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRemote, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the active trace across the process boundary: the remote
	// worker's server span becomes a child of the span carried in ctx.
	if sp := obs.FromContext(ctx); sp.Active() {
		req.Header.Set("traceparent", sp.Traceparent())
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return &RemoteError{Status: 0, Msg: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var werr struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &werr) == nil && werr.Error != "" {
			msg = werr.Error
		}
		return &RemoteError{Status: resp.StatusCode, Code: werr.Code, Msg: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &RemoteError{Status: resp.StatusCode, Msg: "decode response: " + err.Error()}
	}
	return nil
}

// graphPath builds /graphs/{name}/{verb}.
func (b *RemoteBackend) graphPath(verb string) string {
	return "/graphs/" + url.PathEscape(b.graph) + "/" + verb
}

// distRow is the wire shape of one distance vector: null = +Inf.
func distRow(in []*float64) []float64 {
	out := make([]float64, len(in))
	for i, p := range in {
		if p == nil {
			out[i] = math.Inf(1)
		} else {
			out[i] = *p
		}
	}
	return out
}

// DistContext is Dist with a caller context (hedging cancels through it).
func (b *RemoteBackend) DistContext(ctx context.Context, source int32) ([]float64, error) {
	var resp struct {
		Dist []*float64 `json:"dist"`
	}
	q := "?source=" + strconv.FormatInt(int64(source), 10)
	if err := b.do(ctx, http.MethodGet, b.graphPath("dist")+q, nil, &resp); err != nil {
		return nil, err
	}
	return distRow(resp.Dist), nil
}

// Dist implements Backend.
func (b *RemoteBackend) Dist(source int32) ([]float64, error) {
	return b.DistContext(context.Background(), source)
}

// DistTo implements Backend via the scalar form of /dist.
func (b *RemoteBackend) DistTo(source, target int32) (float64, error) {
	var resp struct {
		Dist *float64 `json:"dist"`
	}
	q := fmt.Sprintf("?source=%d&target=%d", source, target)
	if err := b.do(context.Background(), http.MethodGet, b.graphPath("dist")+q, nil, &resp); err != nil {
		return 0, err
	}
	if resp.Dist == nil {
		return math.Inf(1), nil
	}
	return *resp.Dist, nil
}

// MultiSourceContext is MultiSource with a caller context.
func (b *RemoteBackend) MultiSourceContext(ctx context.Context, sources []int32) ([][]float64, error) {
	var resp struct {
		Rows [][]*float64 `json:"rows"`
	}
	body := sourcesRequest{Sources: sources}
	if err := b.do(ctx, http.MethodPost, b.graphPath("multi"), body, &resp); err != nil {
		return nil, err
	}
	out := make([][]float64, len(resp.Rows))
	for i, row := range resp.Rows {
		out[i] = distRow(row)
	}
	return out, nil
}

// MultiSource implements Backend.
func (b *RemoteBackend) MultiSource(sources []int32) ([][]float64, error) {
	return b.MultiSourceContext(context.Background(), sources)
}

// NearestContext is Nearest with a caller context.
func (b *RemoteBackend) NearestContext(ctx context.Context, sources []int32) ([]float64, error) {
	return b.nearest(ctx, sourcesRequest{Sources: sources})
}

// Nearest implements Backend.
func (b *RemoteBackend) Nearest(sources []int32) ([]float64, error) {
	return b.NearestContext(context.Background(), sources)
}

// NearestWithOffsetsContext is NearestWithOffsets with a caller context.
func (b *RemoteBackend) NearestWithOffsetsContext(ctx context.Context, sources []int32, offsets []float64) ([]float64, error) {
	if offsets == nil {
		offsets = []float64{}
	}
	return b.nearest(ctx, sourcesRequest{Sources: sources, Offsets: offsets})
}

// NearestWithOffsets implements OffsetBackend.
func (b *RemoteBackend) NearestWithOffsets(sources []int32, offsets []float64) ([]float64, error) {
	return b.NearestWithOffsetsContext(context.Background(), sources, offsets)
}

func (b *RemoteBackend) nearest(ctx context.Context, body sourcesRequest) ([]float64, error) {
	var resp struct {
		Dist []*float64 `json:"dist"`
	}
	if err := b.do(ctx, http.MethodPost, b.graphPath("nearest"), body, &resp); err != nil {
		return nil, err
	}
	return distRow(resp.Dist), nil
}

// PathContext is Path with a caller context.
func (b *RemoteBackend) PathContext(ctx context.Context, u, v int32) ([]int32, float64, error) {
	var resp struct {
		Path   []int32  `json:"path"`
		Length *float64 `json:"length"`
	}
	q := fmt.Sprintf("?from=%d&to=%d", u, v)
	if err := b.do(ctx, http.MethodGet, b.graphPath("path")+q, nil, &resp); err != nil {
		return nil, 0, err
	}
	if resp.Length == nil {
		return nil, math.Inf(1), nil
	}
	return resp.Path, *resp.Length, nil
}

// Path implements Backend.
func (b *RemoteBackend) Path(u, v int32) ([]int32, float64, error) {
	return b.PathContext(context.Background(), u, v)
}

// Tree implements Backend over GET /graphs/{name}/tree.
func (b *RemoteBackend) Tree(source int32) (*Tree, error) {
	var resp struct {
		Source  int32      `json:"source"`
		Parent  []int32    `json:"parent"`
		ParentW []float64  `json:"parent_w"`
		Dist    []*float64 `json:"dist"`
	}
	q := "?source=" + strconv.FormatInt(int64(source), 10)
	if err := b.do(context.Background(), http.MethodGet, b.graphPath("tree")+q, nil, &resp); err != nil {
		return nil, err
	}
	return &Tree{
		Source:  resp.Source,
		Parent:  resp.Parent,
		ParentW: resp.ParentW,
		Dist:    distRow(resp.Dist),
	}, nil
}

// MatrixContext is Matrix with a caller context.
func (b *RemoteBackend) MatrixContext(ctx context.Context, sources, targets []int32) ([][]float64, error) {
	var resp struct {
		Matrix [][]*float64 `json:"matrix"`
	}
	body := matrixRequest{Sources: sources, Targets: targets}
	if err := b.do(ctx, http.MethodPost, b.graphPath("matrix"), body, &resp); err != nil {
		return nil, err
	}
	out := make([][]float64, len(resp.Matrix))
	for i, row := range resp.Matrix {
		out[i] = distRow(row)
	}
	return out, nil
}

// Matrix implements MatrixBackend.
func (b *RemoteBackend) Matrix(sources, targets []int32) ([][]float64, error) {
	return b.MatrixContext(context.Background(), sources, targets)
}

// Ready reports whether the remote graph currently serves (its /ready
// route answers 200). Transport failures return the error.
func (b *RemoteBackend) Ready(ctx context.Context) (bool, error) {
	err := b.do(ctx, http.MethodGet, b.graphPath("ready"), nil, nil)
	if err == nil {
		return true, nil
	}
	var re *RemoteError
	if errors.As(err, &re) && re.Status == http.StatusServiceUnavailable {
		return false, nil
	}
	return false, err
}

// Healthz probes the remote process's aggregate /healthz route — the
// router's per-endpoint health signal (one probe covers every graph the
// endpoint serves).
func (b *RemoteBackend) Healthz(ctx context.Context) error {
	return b.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// fetchInfo returns the cached remote GraphInfo, refreshing it when
// stale. Failures return the last known info (zero value before the
// first success) so status surfaces degrade instead of erroring.
func (b *RemoteBackend) fetchInfo() GraphInfo {
	b.infoMu.Lock()
	defer b.infoMu.Unlock()
	if b.infoOnce && time.Since(b.infoAt) < infoTTL {
		return b.info
	}
	var gi GraphInfo
	if err := b.do(context.Background(), http.MethodGet, "/graphs/"+url.PathEscape(b.graph), nil, &gi); err == nil {
		b.info = gi
		b.infoOnce = true
	}
	b.infoAt = time.Now()
	return b.info
}

// N implements Backend from the remote graph's status.
func (b *RemoteBackend) N() int { return b.fetchInfo().N }

// MemoryBytes implements Backend: the remote engine's resident estimate.
// Registry budgets treat it like any other backend — evicting a remote
// graph drops the client, not the worker's engine.
func (b *RemoteBackend) MemoryBytes() int64 { return b.fetchInfo().MemoryBytes }

// Describe implements Backend from the remote graph's status.
func (b *RemoteBackend) Describe() BackendInfo {
	gi := b.fetchInfo()
	return BackendInfo{HopsetEdges: gi.HopsetEdges, Shards: gi.Shards}
}

// Stats implements Backend over GET /graphs/{name}/stats. A failed fetch
// returns zero Stats (stats are monitoring, not correctness).
func (b *RemoteBackend) Stats() Stats {
	var resp struct {
		Engine Stats `json:"engine"`
	}
	if err := b.do(context.Background(), http.MethodGet, b.graphPath("stats"), nil, &resp); err != nil {
		return Stats{}
	}
	return resp.Engine
}

var (
	_ Backend       = (*RemoteBackend)(nil)
	_ MatrixBackend = (*RemoteBackend)(nil)
	_ OffsetBackend = (*RemoteBackend)(nil)
)
