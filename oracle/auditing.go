package oracle

import (
	"context"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
)

// AuditableBackend is the optional shadow-audit surface: backends that can
// hand the auditor their logical input graph for an exact recomputation
// implement it. The monolithic *Engine returns the graph it was built
// over; the sharded Oracle reassembles the logical graph from its shard
// subgraphs plus the cut edges (bit-identical to the partitioner's input,
// since partitioning is lossless); the distributed Router loads the shard
// payload files lazily when its manifest directory is configured. A
// backend without this surface (e.g. a RemoteBackend leg) is skipped by
// the auditor and counted as unsupported rather than failed.
type AuditableBackend interface {
	// AuditGraph returns the logical weighted graph this backend answers
	// queries over. It may materialize lazily (and should cache — it is
	// called once per audited sample, off the serve path). The returned
	// graph is immutable and shared.
	AuditGraph() (*graph.Graph, error)
	// StretchBounds returns the advertised multiplicative guarantees: a
	// served distance is within dist×exact of the true distance, a
	// stitched path's length within path×exact. Both are ≥ 1.
	StretchBounds() (dist, path float64)
}

// AuditSample is one served answer captured for shadow auditing. The
// sample owns a retained lease on Handle: whichever code finishes with
// the sample (the audit worker, or the sink's drop path when its ring is
// full) must Release it — the lease is what pins the answering engine
// version against hot reloads and evictions until the exact recompute is
// done.
type AuditSample struct {
	Graph   string
	Route   string // "dist", "path", or "matrix"
	Handle  *Handle
	TraceID string // W3C trace ID of the serving request, "" when untraced
	Source  int32
	Target  int32
	// Answer is the served approximate distance (or, for Route "path",
	// the served path length).
	Answer float64
	// Path is the served vertex sequence for Route "path" (shared with
	// the response; read-only).
	Path []int32
}

// AuditSink receives serve-time samples. oracle/audit.Auditor is the
// implementation; the indirection exists because oracle/audit imports
// oracle. Implementations must make ShouldSample and Sample cheap and
// non-blocking — both run on the query path.
type AuditSink interface {
	// ShouldSample is the sampling decision, taken before any handle is
	// retained so unsampled queries pay one atomic op at most.
	ShouldSample() bool
	// Sample enqueues one answer for auditing. The sink takes ownership
	// of s.Handle's retained lease (releasing it even when the sample is
	// dropped).
	Sample(s AuditSample)
	// Drain discards queued samples (releasing their leases) and waits
	// for in-flight audits to finish. The registry calls it from Close so
	// audit workers never outlive the serving process's engines.
	Drain()
}

// Retain adds a lease to an already-held handle — the audit sampler's
// entry point: the serve path holds a lease while the answer is computed,
// Retain extends the same engine version's life into the background audit,
// and the audit worker Releases when the exact recompute finishes. Calling
// Retain without holding a lease is a use-after-free bug (the version may
// have drained).
func (h *Handle) Retain() { h.acquire() }

// auditTraceID extracts the active trace ID for violation correlation.
func auditTraceID(ctx context.Context) string {
	if sp := obs.FromContext(ctx); sp.Active() {
		return sp.Trace.String()
	}
	return ""
}

// auditSeq spreads rotating audit target picks across the vertex/cell
// space. Process-wide: the coverage rotation should not reset per
// registry.
var auditSeq atomic.Uint64

// auditDist offers one served distance row to the audit sink, sampling a
// single rotating target index rather than copying the n-vector.
func (r *Registry) auditDist(ctx context.Context, name string, h *Handle, source int32, d []float64) {
	a := r.cfg.Audit
	if a == nil || len(d) == 0 || !a.ShouldSample() {
		return
	}
	t := int32(auditSeq.Add(1) % uint64(len(d)))
	h.Retain()
	a.Sample(AuditSample{
		Graph: name, Route: "dist", Handle: h, TraceID: auditTraceID(ctx),
		Source: source, Target: t, Answer: d[t],
	})
}

// auditPath offers one served stitched path to the audit sink.
func (r *Registry) auditPath(ctx context.Context, name string, h *Handle, u, v int32, path []int32, length float64) {
	a := r.cfg.Audit
	if a == nil || !a.ShouldSample() {
		return
	}
	h.Retain()
	a.Sample(AuditSample{
		Graph: name, Route: "path", Handle: h, TraceID: auditTraceID(ctx),
		Source: u, Target: v, Answer: length, Path: path,
	})
}

// auditMatrix offers one rotating cell of a served matrix to the audit
// sink — one cell per sampled call keeps the audit cost independent of
// the S×T block size.
func (r *Registry) auditMatrix(ctx context.Context, name string, h *Handle, sources, targets []int32, rows [][]float64) {
	a := r.cfg.Audit
	if a == nil || len(rows) == 0 || len(rows[0]) == 0 || !a.ShouldSample() {
		return
	}
	cell := auditSeq.Add(1)
	i := int(cell % uint64(len(rows)))
	j := int((cell / uint64(len(rows))) % uint64(len(rows[i])))
	h.Retain()
	a.Sample(AuditSample{
		Graph: name, Route: "matrix", Handle: h, TraceID: auditTraceID(ctx),
		Source: sources[i], Target: targets[j], Answer: rows[i][j],
	})
}

// AuditGraph implements AuditableBackend for the monolithic engine. The
// graph the hopset was built over is retained for query-time relaxation,
// but its weights may be normalized (Hopset.ScaleFactor rescales query
// answers back to input units), and audits compare against served answers
// — so when a scale factor is in play the graph is rescaled back to input
// units once and cached. The rescaled weights match the originals to a
// few ulps, far inside the auditor's relative tolerance.
func (e *Engine) AuditGraph() (*graph.Graph, error) {
	if e == nil || e.Hopset() == nil || e.Hopset().G == nil {
		return nil, ErrNotBuilt
	}
	e.auditOnce.Do(func() {
		h := e.Hopset()
		if h.ScaleFactor == 1 {
			e.auditG = h.G
			return
		}
		ng := *h.G
		ng.Wt = make([]float64, len(h.G.Wt))
		for i, w := range h.G.Wt {
			ng.Wt[i] = w * h.ScaleFactor
		}
		ng.Edges = make([]graph.Edge, len(h.G.Edges))
		for i, ed := range h.G.Edges {
			ed.W *= h.ScaleFactor
			ng.Edges[i] = ed
		}
		e.auditG = &ng
	})
	return e.auditG, nil
}

// StretchBounds implements AuditableBackend: a monolithic engine's Dist
// answers are within (1+ε) of exact, and a reported Path — whose length
// is always the concrete walk's exact length — realizes a distance
// within the same (1+ε).
func (e *Engine) StretchBounds() (dist, path float64) {
	b := 1.0
	if h := e.Hopset(); h != nil {
		b = 1 + h.Params.Epsilon
	}
	return b, b
}

var _ AuditableBackend = (*Engine)(nil)
