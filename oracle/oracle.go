// Package oracle is the public facade of the reproduction: a build-once /
// query-many distance-oracle engine over the deterministic hopsets of
//
//	Michael Elkin and Shaked Matar,
//	"Deterministic PRAM Approximate Shortest Paths in Polylogarithmic Time
//	 and Slightly Super-Linear Work", SPAA 2021 (arXiv:2009.14729).
//
// A hopset is exactly the "pay the construction once, answer every source
// cheaply" structure, so the Engine amortizes one deterministic build
// across many concurrent queries: Dist, MultiSource, Path and Tree are all
// safe to call from any number of goroutines, answers are bit-identical to
// sequential evaluation, per-source distance vectors and shortest-path
// trees are held in LRU caches with hit/miss statistics, and — with
// WithBatchWindow — concurrent cache-missing Dist calls coalesce into one
// multi-source exploration.
//
//	eng, err := oracle.NewFromEdges(n, edges, oracle.WithEpsilon(0.25))
//	d, err := eng.Dist(0)          // (1+ε)-approximate distances from 0
//	l, err := eng.DistTo(0, 17)    // one scalar distance
//	st := eng.Stats()              // cache and batching counters
//
// Engines can be persisted with SaveSnapshot and revived with LoadSnapshot
// without repeating the build. Package oracle/…/cmd/serve exposes an
// Engine over HTTP via NewHandler.
package oracle

import (
	"context"
	"io"
	"time"

	"repro/graphio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/pram"
)

// Edge is one weighted undirected edge of the input graph.
type Edge struct {
	U, V int32
	W    float64
}

// config is the resolved option set of a constructor call.
type config struct {
	opts        core.Options
	buildCtx    context.Context
	distCache   int
	treeCache   int
	batchWindow time.Duration
}

func (c *config) ctx() context.Context {
	if c.buildCtx != nil {
		return c.buildCtx
	}
	return context.Background()
}

func defaultConfig() config {
	return config{
		opts:      core.Options{Epsilon: 0.25},
		distCache: 128,
		treeCache: 16,
	}
}

// Option configures an Engine under construction.
type Option func(*config)

// WithEpsilon sets the stretch target: distances are within (1+eps) of
// exact. Must be in (0, 1); the default is 0.25.
func WithEpsilon(eps float64) Option { return func(c *config) { c.opts.Epsilon = eps } }

// WithKappa sets κ ≥ 2 (default 3), trading hopset size against hopbound.
func WithKappa(kappa int) Option { return func(c *config) { c.opts.Kappa = kappa } }

// WithRho sets ρ ∈ (0, 1/2) (default 1/3), trading work against phases.
func WithRho(rho float64) Option { return func(c *config) { c.opts.Rho = rho } }

// WithEffectiveBeta caps exploration and query hop budgets (0 = auto).
func WithEffectiveBeta(beta int) Option { return func(c *config) { c.opts.EffectiveBeta = beta } }

// WithPathReporting records a realizing path per hopset edge at build
// time, enabling Path and Tree queries (§4 of the paper).
func WithPathReporting() Option { return func(c *config) { c.opts.PathReporting = true } }

// WithWeightReduction applies the Klein–Sairam reduction (Appendix C/D);
// choose it when edge weights span many orders of magnitude.
func WithWeightReduction() Option { return func(c *config) { c.opts.WeightReduction = true } }

// WithStrictWeights uses the paper's closed-form pessimistic hopset edge
// weights instead of tight discovered path lengths.
func WithStrictWeights() Option { return func(c *config) { c.opts.StrictWeights = true } }

// WithTracker accumulates PRAM depth/work accounting for the build and
// every query.
func WithTracker(tr *pram.Tracker) Option { return func(c *config) { c.opts.Tracker = tr } }

// WithDistCache sets the capacity of the per-source distance-vector LRU
// (default 128; 0 disables caching).
func WithDistCache(entries int) Option { return func(c *config) { c.distCache = entries } }

// WithTreeCache sets the capacity of the shortest-path-tree LRU
// (default 16; 0 disables caching).
func WithTreeCache(entries int) Option { return func(c *config) { c.treeCache = entries } }

// WithBatchWindow coalesces Dist queries: a cache-missing query waits up
// to window for companions, then all pending sources share one
// multi-source exploration. 0 (the default) answers each miss immediately.
func WithBatchWindow(window time.Duration) Option {
	return func(c *config) { c.batchWindow = window }
}

// BuildProgress is one report from an engine build: the hopset scale just
// completed, the scale range [K0, Lambda], and the edge count so far. The
// final report of a successful build has Done set.
type BuildProgress struct {
	Scale, K0, Lambda int
	Edges             int
	Done              bool
}

// WithBuildContext makes the construction cooperative: the hopset build
// checks ctx between scales and New/NewFromEdges/LoadGraph return ctx's
// error when it is canceled. The Registry uses this to cancel background
// builds; it has no effect on queries.
func WithBuildContext(ctx context.Context) Option {
	return func(c *config) { c.buildCtx = ctx }
}

// WithBuildProgress registers a callback invoked from the building
// goroutine after every completed hopset scale. Keep it fast; it is on the
// build path.
func WithBuildProgress(fn func(BuildProgress)) Option {
	return func(c *config) {
		c.opts.Progress = func(p hopset.Progress) { fn(BuildProgress(p)) }
	}
}

// New builds an Engine for an already-constructed graph. It is the
// in-module constructor used by the cmd/ binaries and examples; external
// callers use NewFromEdges or LoadGraph.
func New(g *graph.Graph, options ...Option) (*Engine, error) {
	cfg := defaultConfig()
	for _, o := range options {
		o(&cfg)
	}
	solver, err := core.NewCtx(cfg.ctx(), g, cfg.opts)
	if err != nil {
		return nil, err
	}
	return newEngine(solver, cfg), nil
}

// NewFromEdges builds an Engine over the n-vertex graph with the given
// undirected edges (0-based vertices, positive weights).
func NewFromEdges(n int, edges []Edge, options ...Option) (*Engine, error) {
	ge := make([]graph.Edge, len(edges))
	for i, e := range edges {
		ge[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	g, err := graph.FromEdges(n, ge)
	if err != nil {
		return nil, err
	}
	return New(g, options...)
}

// LoadGraph builds an Engine over a graph read from r in any supported
// text or binary format (auto-detected by graphio: DIMACS .gr, edge
// lists, METIS adjacency, the legacy "p/e" text format, or a .csrg
// container, each optionally gzipped).
func LoadGraph(r io.Reader, options ...Option) (*Engine, error) {
	g, _, err := graphio.Decode(r)
	if err != nil {
		return nil, err
	}
	return New(g, options...)
}
