package oracle

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
)

func newTestServer(t *testing.T) (*Engine, *graph.Graph, *httptest.Server) {
	t.Helper()
	g := graph.Gnm(200, 800, graph.UniformWeights(1, 8), 11)
	eng, err := New(g, WithEpsilon(0.25), WithPathReporting())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(eng))
	t.Cleanup(srv.Close)
	return eng, g, srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestServerDistEndToEnd: GET /dist on a generated graph returns scalar
// and vector answers that satisfy the (1+ε) guarantee against Dijkstra.
func TestServerDistEndToEnd(t *testing.T) {
	_, g, srv := newTestServer(t)
	ref, _ := exact.DijkstraGraph(g, 0)

	var scalar struct {
		Source int32    `json:"source"`
		Target int32    `json:"target"`
		Dist   *float64 `json:"dist"`
	}
	if code := getJSON(t, srv.URL+"/dist?source=0&target=99", &scalar); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if scalar.Dist == nil {
		t.Fatal("vertex 99 unexpectedly unreachable")
	}
	if *scalar.Dist < ref[99]-1e-9 || *scalar.Dist > 1.25*ref[99]+1e-9 {
		t.Errorf("served dist %v outside [d, 1.25d] for exact %v", *scalar.Dist, ref[99])
	}

	var vector struct {
		Source int32      `json:"source"`
		Dist   []*float64 `json:"dist"`
	}
	if code := getJSON(t, srv.URL+"/dist?source=0", &vector); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(vector.Dist) != g.N {
		t.Fatalf("vector length %d, want %d", len(vector.Dist), g.N)
	}
	for v, d := range vector.Dist {
		if math.IsInf(ref[v], 1) {
			if d != nil {
				t.Errorf("vertex %d: unreachable but served %v", v, *d)
			}
			continue
		}
		if d == nil || *d < ref[v]-1e-9 || *d > 1.25*ref[v]+1e-9 {
			t.Errorf("vertex %d: served %v outside [d, 1.25d] for exact %v", v, d, ref[v])
		}
	}
}

func TestServerPathAndStats(t *testing.T) {
	eng, g, srv := newTestServer(t)
	var pr struct {
		Path   []int32  `json:"path"`
		Length *float64 `json:"length"`
	}
	dest := int32(g.N - 1)
	if code := getJSON(t, fmt.Sprintf("%s/path?from=0&to=%d", srv.URL, dest), &pr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if pr.Length == nil || len(pr.Path) == 0 {
		t.Fatal("expected a concrete path")
	}
	if pr.Path[0] != 0 || pr.Path[len(pr.Path)-1] != dest {
		t.Errorf("path endpoints %v", pr.Path)
	}
	// Every consecutive pair must be a real graph edge.
	var total float64
	for i := 1; i < len(pr.Path); i++ {
		w, ok := g.HasEdge(pr.Path[i-1], pr.Path[i])
		if !ok {
			t.Fatalf("served path uses non-edge (%d,%d)", pr.Path[i-1], pr.Path[i])
		}
		total += w
	}
	if math.Abs(total-*pr.Length) > 1e-6 {
		t.Errorf("path weighs %v, served length %v", total, *pr.Length)
	}

	var st struct {
		Graph struct {
			N int `json:"n"`
			M int `json:"m"`
		} `json:"graph"`
		Hopset struct {
			Edges   int     `json:"edges"`
			Epsilon float64 `json:"epsilon"`
		} `json:"hopset"`
		Engine Stats `json:"engine"`
	}
	if code := getJSON(t, srv.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.Graph.N != g.N || st.Graph.M != g.M() {
		t.Errorf("stats graph %+v", st.Graph)
	}
	if st.Hopset.Edges != eng.Hopset().Size() || st.Hopset.Epsilon != 0.25 {
		t.Errorf("stats hopset %+v", st.Hopset)
	}
	if st.Engine.PathQueries < 1 || st.Engine.TreeQueries < 1 {
		t.Errorf("stats engine %+v", st.Engine)
	}
	// The relaxation engine's per-query scanned-arc accounting must be
	// served: the tree query above ran at least one exploration.
	rx := st.Engine.Relax
	if rx.Explorations < 1 || rx.ScannedArcs <= 0 || rx.ArcsPerExploration <= 0 {
		t.Errorf("stats relax %+v", rx)
	}
	if rx.DenseRounds+rx.SparseRounds <= 0 {
		t.Errorf("stats relax rounds %+v", rx)
	}
}

func TestServerErrors(t *testing.T) {
	_, _, srv := newTestServer(t)
	for url, want := range map[string]int{
		"/dist":                   http.StatusBadRequest, // missing source
		"/dist?source=abc":        http.StatusBadRequest,
		"/dist?source=100000":     http.StatusBadRequest, // out of range
		"/path?from=0":            http.StatusBadRequest, // missing to
		"/path?from=0&to=-5":      http.StatusBadRequest,
		"/dist?source=0&target=x": http.StatusBadRequest,
	} {
		var body map[string]any
		if code := getJSON(t, srv.URL+url, &body); code != want {
			t.Errorf("GET %s: status %d, want %d (%v)", url, code, want, body)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("GET %s: no error field in %v", url, body)
		}
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}
