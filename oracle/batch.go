package oracle

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relax"
)

// occupancyBuckets is the batch-size histogram shape reported by Stats:
// distinct sources per flushed batch, bucketed as
// 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64.
const occupancyBuckets = 7

func occupancyBucket(size int) int {
	switch {
	case size <= 1:
		return 0
	case size == 2:
		return 1
	case size <= 4:
		return 2
	case size <= 8:
		return 3
	case size <= 16:
		return 4
	case size <= 32:
		return 5
	default:
		return 6
	}
}

// distBatcher coalesces cache-missing Dist/MultiSource queries: the first
// miss arms a timer; every miss arriving within the window joins the
// pending set; when the timer fires — or as soon as relax.MaxBatch
// distinct sources are pending, a full kernel word — all distinct pending
// sources are answered by one batched multi-source exploration and the
// rows are committed to the cache once and fanned out to every waiter.
type distBatcher struct {
	window time.Duration
	run    func([]int32) ([][]float64, error)
	commit func(int32, []float64)

	mu      sync.Mutex
	pending map[int32][]waiter
	timer   *time.Timer

	batches   atomic.Int64
	batched   atomic.Int64
	maxBatch  atomic.Int64
	waitNano  atomic.Int64 // total time waiters spent parked before their flush started
	occupancy [occupancyBuckets]atomic.Int64
}

type waiter struct {
	ch chan<- distResult
	at time.Time
}

type distResult struct {
	dist []float64
	err  error
}

func newDistBatcher(window time.Duration, run func([]int32) ([][]float64, error), commit func(int32, []float64)) *distBatcher {
	return &distBatcher{
		window:  window,
		run:     run,
		commit:  commit,
		pending: make(map[int32][]waiter),
	}
}

// add registers one waiter for src under the lock and reports whether the
// pending set just reached a full kernel word.
func (b *distBatcher) add(src int32, ch chan<- distResult, now time.Time) (full bool) {
	b.pending[src] = append(b.pending[src], waiter{ch: ch, at: now})
	if b.timer == nil {
		b.timer = time.AfterFunc(b.window, b.flush)
	}
	return len(b.pending) == relax.MaxBatch
}

// flushEarly fires the flush without waiting out the window: a full
// kernel word gains nothing from more waiting. Racing with the timer is
// benign — flush swaps the pending set under the lock, so a duplicate
// invocation sees an empty set (or flushes later arrivals, which is just
// a smaller batch).
func (b *distBatcher) flushEarly() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	go b.flush()
}

// enqueue registers a query for src and blocks until its batch is flushed.
func (b *distBatcher) enqueue(src int32) ([]float64, error) {
	ch := make(chan distResult, 1)
	b.mu.Lock()
	if b.add(src, ch, time.Now()) {
		b.flushEarly()
	}
	b.mu.Unlock()
	r := <-ch
	return r.dist, r.err
}

// enqueueMany registers one query per source under a single lock
// acquisition — the MultiSource coalescing path — and blocks until every
// row is in. Row i answers srcs[i]; duplicate sources are answered by the
// same exploration. The first error wins.
func (b *distBatcher) enqueueMany(srcs []int32) ([][]float64, error) {
	chans := make([]chan distResult, len(srcs))
	now := time.Now()
	b.mu.Lock()
	full := false
	for i, s := range srcs {
		chans[i] = make(chan distResult, 1)
		full = b.add(s, chans[i], now) || full
	}
	if full {
		b.flushEarly()
	}
	b.mu.Unlock()
	rows := make([][]float64, len(srcs))
	var firstErr error
	for i, ch := range chans {
		r := <-ch
		rows[i] = r.dist
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return rows, nil
}

func (b *distBatcher) flush() {
	b.mu.Lock()
	pending := b.pending
	b.pending = make(map[int32][]waiter)
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	if len(pending) == 0 {
		return
	}

	now := time.Now()
	srcs := make([]int32, 0, len(pending))
	var waiters int64
	var waited time.Duration
	for s, ws := range pending {
		srcs = append(srcs, s)
		waiters += int64(len(ws))
		for _, w := range ws {
			waited += now.Sub(w.at)
		}
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	b.batches.Add(1)
	b.batched.Add(waiters)
	b.waitNano.Add(int64(waited))
	b.occupancy[occupancyBucket(len(srcs))].Add(1)
	for {
		cur := b.maxBatch.Load()
		if int64(len(srcs)) <= cur || b.maxBatch.CompareAndSwap(cur, int64(len(srcs))) {
			break
		}
	}

	rows, err := b.run(srcs)
	for i, s := range srcs {
		var d []float64
		if err == nil {
			d = rows[i]
			b.commit(s, d)
		}
		for _, w := range pending[s] {
			w.ch <- distResult{dist: d, err: err}
		}
	}
}

// occupancySnapshot returns the histogram as a slice for Stats.
func (b *distBatcher) occupancySnapshot() []int64 {
	out := make([]int64, occupancyBuckets)
	for i := range out {
		out[i] = b.occupancy[i].Load()
	}
	return out
}
