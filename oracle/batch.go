package oracle

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// distBatcher coalesces cache-missing Dist queries: the first miss arms a
// timer; every miss arriving within the window joins the pending set; when
// the timer fires, all distinct pending sources are answered by one
// multi-source exploration (the aMSSD query of Theorem 3.8) and the rows
// are committed to the cache once and fanned out to every waiter.
type distBatcher struct {
	window time.Duration
	run    func([]int32) ([][]float64, error)
	commit func(int32, []float64)

	mu      sync.Mutex
	pending map[int32][]chan<- distResult
	timer   *time.Timer

	batches  atomic.Int64
	batched  atomic.Int64
	maxBatch atomic.Int64
}

type distResult struct {
	dist []float64
	err  error
}

func newDistBatcher(window time.Duration, run func([]int32) ([][]float64, error), commit func(int32, []float64)) *distBatcher {
	return &distBatcher{
		window:  window,
		run:     run,
		commit:  commit,
		pending: make(map[int32][]chan<- distResult),
	}
}

// enqueue registers a query for src and blocks until its batch is flushed.
func (b *distBatcher) enqueue(src int32) ([]float64, error) {
	ch := make(chan distResult, 1)
	b.mu.Lock()
	b.pending[src] = append(b.pending[src], ch)
	if b.timer == nil {
		b.timer = time.AfterFunc(b.window, b.flush)
	}
	b.mu.Unlock()
	r := <-ch
	return r.dist, r.err
}

func (b *distBatcher) flush() {
	b.mu.Lock()
	pending := b.pending
	b.pending = make(map[int32][]chan<- distResult)
	b.timer = nil
	b.mu.Unlock()
	if len(pending) == 0 {
		return
	}

	srcs := make([]int32, 0, len(pending))
	var waiters int64
	for s, chans := range pending {
		srcs = append(srcs, s)
		waiters += int64(len(chans))
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	b.batches.Add(1)
	b.batched.Add(waiters)
	for {
		cur := b.maxBatch.Load()
		if int64(len(srcs)) <= cur || b.maxBatch.CompareAndSwap(cur, int64(len(srcs))) {
			break
		}
	}

	rows, err := b.run(srcs)
	for i, s := range srcs {
		var d []float64
		if err == nil {
			d = rows[i]
			b.commit(s, d)
		}
		for _, ch := range pending[s] {
			ch <- distResult{dist: d, err: err}
		}
	}
}
