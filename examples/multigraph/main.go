// Multigraph: the registry serving three regions at once — background
// builds with live progress, queries against whichever graphs are already
// resident, a zero-downtime hot reload, and eviction under a memory
// budget. This is the multi-tenant deployment shape the hopset's
// build-once/query-many economics are made for: one deterministic build
// per region, then every query is a cheap hop-bounded exploration.
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/testkit"
	"repro/oracle"
)

func main() {
	// A memory budget that fits roughly two of the three regions keeps
	// the least-recently-used one cold — it rebuilds on demand.
	probe, err := oracle.New(testkit.Grid(2048, 1), oracle.WithEpsilon(0.25))
	if err != nil {
		log.Fatal(err)
	}
	budget := 5 * probe.MemoryBytes() / 2

	reg := oracle.NewRegistry(oracle.RegistryConfig{
		MemoryBudget:  budget,
		EngineOptions: []oracle.Option{oracle.WithDistCache(64)},
	})
	defer reg.Close()

	// Three regions, three graph families, all building in the background
	// on the bounded build pool. The version counter makes each reload of
	// "bayarea" observable.
	var bayareaBuilds atomic.Int64
	if err := reg.Add("bayarea", func(ctx context.Context, opts ...oracle.Option) (oracle.Backend, error) {
		seed := bayareaBuilds.Add(1)
		return oracle.New(testkit.Grid(2048, seed), append(opts, oracle.WithEpsilon(0.25))...)
	}); err != nil {
		log.Fatal(err)
	}
	if err := reg.Add("social", oracle.GraphSource(testkit.Social(2000, 7), oracle.WithEpsilon(0.25))); err != nil {
		log.Fatal(err)
	}
	if err := reg.Add("mesh", oracle.GraphSource(testkit.Geometric(1500, 9), oracle.WithEpsilon(0.25))); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	for _, name := range []string{"bayarea", "social", "mesh"} {
		if err := reg.WaitReady(ctx, name); err != nil {
			log.Fatal(err)
		}
		gi, _ := reg.Info(name)
		fmt.Printf("%-8s ready: version %d, n=%d, hopset %d edges, ~%d KiB\n",
			gi.Name, gi.Version, gi.N, gi.HopsetEdges, gi.MemoryBytes>>10)
	}

	// Query by name. With the budget above, one region may be evicted —
	// WaitReady warms it back up on demand.
	d, err := reg.DistTo("bayarea", 0, 2047)
	if err != nil {
		if err = reg.WaitReady(ctx, "bayarea"); err == nil {
			d, err = reg.DistTo("bayarea", 0, 2047)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bayarea: d(0, 2047) ≈ %.1f\n", d)

	// Hot reload: a consistent handle pins one engine version while the
	// replacement builds; the swap is atomic and drains on refcounts.
	before, _ := reg.Info("bayarea")
	if err := reg.Reload("bayarea"); err != nil {
		log.Fatal(err)
	}
	for {
		gi, err := reg.Info("bayarea")
		if err != nil {
			log.Fatal(err)
		}
		if gi.Version > before.Version {
			fmt.Printf("bayarea hot-swapped: version %d → %d, zero downtime\n",
				before.Version, gi.Version)
			break
		}
		// The old engine keeps answering mid-reload.
		if _, err := reg.DistTo("bayarea", 0, 1); err != nil {
			log.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	st := reg.Stats()
	fmt.Printf("registry: %d graphs (%d ready, %d evicted), %d queries, %d builds, %d reloads, %d evictions, ~%d KiB resident (budget %d KiB)\n",
		st.Graphs, st.Ready, st.Evicted, st.Queries, st.BuildsDone, st.Reloads, st.Evictions,
		st.MemoryBytes>>10, budget>>10)
}
