// Roadnet: the motivating workload for hopsets — a high-diameter road-like
// grid where plain parallel Bellman–Ford needs ~diameter rounds, while the
// hopset collapses the hop diameter to polylog (§1.1, experiment E11).
// Simulates a multi-depot dispatch: nearest-depot distances for every
// intersection.
package main

import (
	"fmt"
	"log"

	"repro/internal/adj"
	"repro/internal/bmf"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/oracle"
)

func main() {
	// A 96×96 grid with road-segment weights: diameter ≈ 190 hops.
	const rows, cols = 96, 96
	g := graph.Grid(rows, cols, graph.UniformWeights(1, 3), 7)
	fmt.Printf("road network: %d intersections, %d segments\n", g.N, g.M())

	eng, err := oracle.New(g, oracle.WithEpsilon(0.25))
	if err != nil {
		log.Fatal(err)
	}

	// Three depots in different corners.
	depots := []int32{0, int32(rows*cols - 1), int32(rows/2*cols + cols/2)}
	nearest, err := eng.Nearest(depots)
	if err != nil {
		log.Fatal(err)
	}

	// Exact reference: multi-source Dijkstra via a super-source trick is
	// equivalent to the min over per-depot runs.
	ref := make([]float64, g.N)
	for i := range ref {
		ref[i] = -1
	}
	for _, d := range depots {
		dd, _ := exact.DijkstraGraph(g, d)
		for v := range dd {
			if ref[v] < 0 || dd[v] < ref[v] {
				ref[v] = dd[v]
			}
		}
	}
	worst := 1.0
	for v := range nearest {
		if ref[v] > 0 {
			if r := nearest[v] / ref[v]; r > worst {
				worst = r
			}
		}
	}
	fmt.Printf("nearest-depot distances: max stretch %.4f (≤ 1.25 guaranteed)\n", worst)

	// The hop-reduction effect: rounds to reach 1.25-approx distances
	// from depot 0 with and without the hopset.
	src := int32(17*cols + 29) // an ordinary intersection, not a depot/center
	exactSrc, _ := exact.DijkstraGraph(g, src)
	plain := bmf.RoundsToApprox(adj.Build(g, nil), []int32{src}, exactSrc, 0.25, g.N, nil)
	h := eng.Hopset()
	with := bmf.RoundsToApprox(adj.Build(h.G, h.Extras()), []int32{src}, exactSrc, 0.25, g.N, nil)
	fmt.Printf("Bellman–Ford rounds to 1.25-approx from %d: %d without hopset, %d with (%.1fx fewer)\n",
		src, plain, with, float64(plain)/float64(with))
}
