// Roadnet: the motivating workload for hopsets — a high-diameter road-like
// grid where plain parallel Bellman–Ford needs ~diameter rounds, while the
// hopset collapses the hop diameter to polylog (§1.1, experiment E11).
// Simulates a multi-depot dispatch: nearest-depot distances for every
// intersection.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/adj"
	"repro/internal/bmf"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/oracle"
)

func main() {
	// A 96×96 grid with road-segment weights: diameter ≈ 190 hops.
	const rows, cols = 96, 96
	g := graph.Grid(rows, cols, graph.UniformWeights(1, 3), 7)
	fmt.Printf("road network: %d intersections, %d segments\n", g.N, g.M())

	eng, err := oracle.New(g, oracle.WithEpsilon(0.25))
	if err != nil {
		log.Fatal(err)
	}

	// Three depots in different corners.
	depots := []int32{0, int32(rows*cols - 1), int32(rows/2*cols + cols/2)}
	nearest, err := eng.Nearest(depots)
	if err != nil {
		log.Fatal(err)
	}

	// Exact reference: multi-source Dijkstra via a super-source trick is
	// equivalent to the min over per-depot runs.
	ref := make([]float64, g.N)
	for i := range ref {
		ref[i] = -1
	}
	for _, d := range depots {
		dd, _ := exact.DijkstraGraph(g, d)
		for v := range dd {
			if ref[v] < 0 || dd[v] < ref[v] {
				ref[v] = dd[v]
			}
		}
	}
	worst := 1.0
	for v := range nearest {
		if ref[v] > 0 {
			if r := nearest[v] / ref[v]; r > worst {
				worst = r
			}
		}
	}
	fmt.Printf("nearest-depot distances: max stretch %.4f (≤ 1.25 guaranteed)\n", worst)

	// The hop-reduction effect: rounds to reach 1.25-approx distances
	// from an ordinary intersection with and without the hopset. The
	// round cap is the hopset's β-derived query budget plus generous
	// slack — never the worst-case n rounds (an O(n·m) scan on a graph
	// this shape); plain Bellman–Ford needs ~hop-diameter rounds, which
	// the slack comfortably covers here.
	src := int32(17*cols + 29) // an ordinary intersection, not a depot/center
	h := eng.Hopset()
	budget := eng.HopBudget()
	maxRounds := 8*budget + 64
	exactSrc, _ := exact.DijkstraGraph(g, src)

	measure := func(label string, a *adj.Adj) int {
		tr := pram.New()
		start := time.Now()
		rounds := bmf.RoundsToApprox(a, []int32{src}, exactSrc, 0.25, maxRounds, tr)
		elapsed := time.Since(start)
		scanned := tr.Snapshot().Work // the engine charges only arcs actually scanned
		if rounds < 0 {
			fmt.Printf("  %-15s >%d rounds (cap), %8d arcs scanned, %s\n",
				label, maxRounds, scanned, elapsed.Round(10*time.Microsecond))
		} else {
			fmt.Printf("  %-15s %4d rounds, %8d arcs scanned, %s\n",
				label, rounds, scanned, elapsed.Round(10*time.Microsecond))
		}
		return rounds
	}
	fmt.Printf("Bellman–Ford to 1.25-approx from %d (round cap %d = 8·budget+64):\n", src, maxRounds)
	plain := measure("without hopset", adj.Build(g, nil))
	with := measure("with hopset", adj.Build(h.G, h.Extras()))
	if plain > 0 && with > 0 {
		fmt.Printf("hop reduction: %.1fx fewer rounds (PRAM depth); the frontier-sparse engine keeps\n", float64(plain)/float64(with))
		fmt.Printf("the plain scan's work at the wave frontier instead of %d full %d-arc sweeps\n",
			plain, 2*g.M())
	}
}
