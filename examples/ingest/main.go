// Ingest: the full dataset pipeline — write a "downloaded" road network
// as DIMACS text, convert it once to the binary .csrg container, open it
// zero-copy via mmap, register it on a multi-graph registry through
// oracle.FileSource, and answer distance queries. The point of the
// exercise: cold-starting a graph service from a converted container is
// bounded by disk bandwidth (plus the hopset build), not by parse speed,
// and a byte of the answers never depends on which format the graph
// entered through.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/graphio"
	"repro/internal/testkit"
	"repro/oracle"
)

func main() {
	dir, err := os.MkdirTemp("", "ingest")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A stand-in for a downloaded dataset: a 64×64 road grid as DIMACS.
	g := testkit.Grid(64*64, 7)
	grPath := filepath.Join(dir, "roadnet.gr")
	if err := graphio.EncodeFile(grPath, g); err != nil {
		log.Fatal(err)
	}

	// Convert once (what cmd/graphconv does), then compare load paths.
	csrgPath := filepath.Join(dir, "roadnet.csrg")
	start := time.Now()
	parsed, format, err := graphio.LoadFile(grPath)
	if err != nil {
		log.Fatal(err)
	}
	parseTime := time.Since(start)
	if err := graphio.EncodeFile(csrgPath, parsed); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	m, err := graphio.OpenCSRG(csrgPath)
	if err != nil {
		log.Fatal(err)
	}
	openTime := time.Since(start)
	fmt.Printf("%s: n=%d m=%d\n", format, parsed.N, parsed.M())
	fmt.Printf("text parse %v | csrg open %v (zero-copy=%v)\n",
		parseTime.Round(time.Microsecond), openTime.Round(time.Microsecond), m.ZeroCopy())
	m.Close()

	// Serve the container by name — the cmd/serve -graph-dir path. The
	// source re-reads the file on every reload.
	reg := oracle.NewRegistry(oracle.RegistryConfig{})
	defer reg.Close()
	if err := reg.Add("roadnet", oracle.FileSource(csrgPath, oracle.WithEpsilon(0.25))); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := reg.WaitReady(ctx, "roadnet"); err != nil {
		log.Fatal(err)
	}
	d, err := reg.DistTo("roadnet", 0, int32(g.N-1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dist(0, %d) ≈ %.0f across the grid\n", g.N-1, d)
}
