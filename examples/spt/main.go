// SPT: the path-reporting variant (§4, Theorem 4.6). Builds a hopset whose
// edges remember realizing paths, extracts a (1+ε)-approximate
// shortest-path tree whose edges all belong to the original graph, and
// reads actual routes out of it. Runs on a wide-weight graph through the
// Klein–Sairam reduction (Appendix D), so the aspect ratio is irrelevant.
package main

import (
	"fmt"
	"log"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/oracle"
)

func main() {
	// Weights spanning ~2^14: the regime where the weight reduction
	// (Appendix C/D) is required for polylog behaviour.
	g := graph.Gnm(1200, 4800, graph.GeometricScaleWeights(14), 5)
	minW, maxW := g.WeightRange()
	fmt.Printf("graph: n=%d m=%d weights in [%.2g, %.2g]\n", g.N, g.M(), minW, maxW)

	eng, err := oracle.New(g,
		oracle.WithEpsilon(0.5),
		oracle.WithPathReporting(),
		oracle.WithWeightReduction(),
	)
	if err != nil {
		log.Fatal(err)
	}
	r := eng.Solver().Reduction()
	fmt.Printf("reduction: %d relevant scales, %d star edges, %d mapped hopset edges\n",
		r.RelevantScales, r.Stars, r.MappedEdges)

	tree, err := eng.Tree(0)
	if err != nil {
		log.Fatal(err)
	}

	// Every tree edge is an original graph edge; distances are (1+ε)-approx.
	ref, _ := exact.DijkstraGraph(g, 0)
	worst := 1.0
	edges := 0
	for v := range tree.Parent {
		if tree.Parent[v] >= 0 {
			edges++
		}
		if ref[v] > 0 {
			if s := tree.Dist[v] / ref[v]; s > worst {
				worst = s
			}
		}
	}
	fmt.Printf("SPT: %d edges (⊆ E), max stretch %.4f (≤ 1.5 guaranteed)\n", edges, worst)

	// Read an actual route out of the engine; the tree built above is
	// cached, so this Path call only walks parent pointers.
	dest := int32(g.N - 1)
	route, length, err := eng.Path(0, dest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route 0 → %d: %d hops, length %.1f (exact %.1f)\n",
		dest, len(route)-1, length, ref[dest])
}
