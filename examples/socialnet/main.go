// Socialnet: approximate distances from many seeds on a power-law graph —
// the aMSSD problem of Theorem 3.8 (|S| parallel β-hop explorations over
// one shared hopset), as used for landmark-based distance sketches.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/oracle"
)

func main() {
	// Preferential-attachment graph: skewed degrees, small diameter.
	g := graph.PowerLaw(3000, 3, graph.UniformWeights(1, 4), 99)
	fmt.Printf("social graph: %d users, %d ties, max degree %d\n", g.N, g.M(), g.MaxDegree())

	eng, err := oracle.New(g, oracle.WithEpsilon(0.25))
	if err != nil {
		log.Fatal(err)
	}

	// 8 landmark users spread over the ID space. The engine computes the
	// rows concurrently and caches each landmark's vector, so re-querying
	// any landmark later is a cache hit.
	landmarks := make([]int32, 8)
	for i := range landmarks {
		landmarks[i] = int32(i * g.N / len(landmarks))
	}
	sketch, err := eng.MultiSource(landmarks)
	if err != nil {
		log.Fatal(err)
	}

	// Validate a few rows against Dijkstra and use the sketch to bound a
	// pairwise distance by triangulation.
	var worst float64 = 1
	for i, s := range landmarks[:3] {
		ref, _ := exact.DijkstraGraph(g, s)
		for v := 0; v < g.N; v++ {
			if ref[v] > 0 && !math.IsInf(ref[v], 1) {
				if r := sketch[i][v] / ref[v]; r > worst {
					worst = r
				}
			}
		}
	}
	fmt.Printf("landmark rows validated: max stretch %.4f (≤ 1.25 guaranteed)\n", worst)

	u, v := int32(123), int32(2900)
	upper := math.Inf(1)
	for i := range landmarks {
		if b := sketch[i][u] + sketch[i][v]; b < upper {
			upper = b
		}
	}
	ref, _ := exact.DijkstraGraph(g, u)
	fmt.Printf("triangulated upper bound d(%d,%d) ≤ %.1f (exact %.1f)\n", u, v, upper, ref[v])

	st := eng.Stats()
	fmt.Printf("engine: %d multi-source queries, dist cache %d/%d entries\n",
		st.MultiQueries, st.DistCache.Len, st.DistCache.Cap)
}
