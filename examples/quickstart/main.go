// Quickstart: build a deterministic hopset for a random graph, query
// (1+ε)-approximate single-source distances, and compare with exact
// Dijkstra — the minimal end-to-end use of the library (Theorems 3.7/3.8).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
)

func main() {
	// A connected random graph: 2 000 vertices, 8 000 weighted edges.
	g := graph.Gnm(2000, 8000, graph.UniformWeights(1, 10), 42)

	// Build the deterministic hopset (ε = 0.25: distances within 25%).
	solver, err := core.New(g, core.Options{Epsilon: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hopset: %d edges over a graph with %d edges (β=%d, %d scales)\n",
		solver.Hopset().Size(), g.M(),
		solver.Hopset().Sched.Beta,
		solver.Hopset().Sched.Lambda-solver.Hopset().Sched.K0+1)

	// Approximate distances from vertex 0 — a hop-limited Bellman–Ford
	// over G ∪ H, the paper's query procedure.
	dist, err := solver.ApproxDistances(0)
	if err != nil {
		log.Fatal(err)
	}

	// Compare with exact distances.
	ref, _ := exact.DijkstraGraph(g, 0)
	worst := 1.0
	for v := range dist {
		if ref[v] > 0 {
			if r := dist[v] / ref[v]; r > worst {
				worst = r
			}
		}
	}
	fmt.Printf("max stretch vs Dijkstra: %.4f (guarantee: ≤ 1.25)\n", worst)
	fmt.Printf("sample: d(0, %d) ≈ %.1f (exact %.1f)\n", g.N-1, dist[g.N-1], ref[g.N-1])
}
