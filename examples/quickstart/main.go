// Quickstart: build a distance-oracle engine over a random graph, query
// (1+ε)-approximate distances through the public oracle API, and compare
// with exact Dijkstra — the minimal end-to-end use of the library
// (Theorems 3.7/3.8). The second query hits the engine's LRU cache.
package main

import (
	"fmt"
	"log"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/oracle"
)

func main() {
	// A connected random graph: 2 000 vertices, 8 000 weighted edges.
	g := graph.Gnm(2000, 8000, graph.UniformWeights(1, 10), 42)

	// Build the engine once (ε = 0.25: distances within 25%); every query
	// afterwards reuses the deterministic hopset built here.
	eng, err := oracle.New(g, oracle.WithEpsilon(0.25))
	if err != nil {
		log.Fatal(err)
	}
	h := eng.Hopset()
	fmt.Printf("hopset: %d edges over a graph with %d edges (β=%d, %d scales)\n",
		h.Size(), g.M(), h.Sched.Beta, h.Sched.Lambda-h.Sched.K0+1)

	// Approximate distances from vertex 0 — a hop-limited Bellman–Ford
	// over G ∪ H, the paper's query procedure.
	dist, err := eng.Dist(0)
	if err != nil {
		log.Fatal(err)
	}

	// Compare with exact distances.
	ref, _ := exact.DijkstraGraph(g, 0)
	worst := 1.0
	for v := range dist {
		if ref[v] > 0 {
			if r := dist[v] / ref[v]; r > worst {
				worst = r
			}
		}
	}
	fmt.Printf("max stretch vs Dijkstra: %.4f (guarantee: ≤ 1.25)\n", worst)

	// Scalar queries against the same source are cache hits.
	d, err := eng.DistTo(0, int32(g.N-1))
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("sample: d(0, %d) ≈ %.1f (exact %.1f) | dist cache: %d hits / %d misses\n",
		g.N-1, d, ref[g.N-1], st.DistCache.Hits, st.DistCache.Misses)
}
