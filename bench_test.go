// Benchmarks regenerating every experiment of EXPERIMENTS.md (E1–E17; run
// with -benchtime=1x — each iteration performs a full sweep), plus
// micro-benchmarks of the substrate operations. Metrics reported via
// b.ReportMetric are the headline numbers recorded in EXPERIMENTS.md; the
// full tables print under -v.
package repro_test

import (
	"encoding/json"
	"math"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/adj"
	"repro/internal/baseline"
	"repro/internal/bmf"
	"repro/internal/conncomp"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/hopset"
	"repro/internal/limbfs"
	"repro/internal/pathrep"
	"repro/internal/pram"
	"repro/internal/psort"
	"repro/internal/relax"
	"repro/internal/scaling"
	"repro/internal/testkit"
	"repro/oracle"
)

var benchCfg = harness.Config{Quick: true, Seed: 1}

// parseCell converts a numeric table cell.
func parseCell(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

// colIndex finds a column by name (-1 if absent).
func colIndex(t *harness.Table, name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

func reportWorst(b *testing.B, t *harness.Table, col, metric string) {
	b.Helper()
	idx := colIndex(t, col)
	if idx < 0 {
		return
	}
	worst := 0.0
	for _, r := range t.Rows {
		if v := parseCell(r[idx]); !math.IsNaN(v) && v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, metric)
}

func runExperiment(b *testing.B, run func(harness.Config) *harness.Table) *harness.Table {
	b.Helper()
	var t *harness.Table
	for i := 0; i < b.N; i++ {
		t = run(benchCfg)
	}
	b.Log("\n" + t.String())
	okCol := colIndex(t, "ok")
	if okCol < 0 {
		okCol = colIndex(t, "valid")
	}
	if okCol >= 0 {
		for _, r := range t.Rows {
			if r[okCol] == "FAIL" {
				b.Fatalf("%s: failing row %v", t.ID, r)
			}
		}
	}
	return t
}

func BenchmarkE1HopsetSize(b *testing.B) {
	t := runExperiment(b, harness.E1HopsetSize)
	reportWorst(b, t, "|H|/bound", "size/bound")
}

func BenchmarkE2Stretch(b *testing.B) {
	t := runExperiment(b, harness.E2Stretch)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE3Work(b *testing.B) {
	t := runExperiment(b, harness.E3Work)
	reportWorst(b, t, "fit exp", "work-exponent")
}

func BenchmarkE4SSSP(b *testing.B) {
	t := runExperiment(b, harness.E4SSSP)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE5Depth(b *testing.B) {
	t := runExperiment(b, harness.E5Depth)
	reportWorst(b, t, "depth/log³n", "depth/log3n")
}

func BenchmarkE6Phases(b *testing.B)  { runExperiment(b, harness.E6Phases) }
func BenchmarkE13Radii(b *testing.B)  { runExperiment(b, harness.E13Radii) }
func BenchmarkE14Ledger(b *testing.B) { runExperiment(b, harness.E14Ledger) }

func BenchmarkE7Stars(b *testing.B) {
	t := runExperiment(b, harness.E7Stars)
	reportWorst(b, t, "|S|/(n·log n)", "stars/bound")
}

func BenchmarkE8PathReport(b *testing.B) {
	t := runExperiment(b, harness.E8PathReport)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE9KleinSairam(b *testing.B) {
	t := runExperiment(b, harness.E9KleinSairam)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE10Derand(b *testing.B) {
	t := runExperiment(b, harness.E10Derand)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE11HopReduction(b *testing.B) {
	t := runExperiment(b, harness.E11HopReduction)
	reportWorst(b, t, "speedup", "hop-speedup")
}

func BenchmarkE12Speedup(b *testing.B) {
	t := runExperiment(b, harness.E12Speedup)
	reportWorst(b, t, "speedup", "wall-speedup")
}

func BenchmarkE15WeightModes(b *testing.B) {
	t := runExperiment(b, harness.E15WeightModes)
	reportWorst(b, t, "|H|", "edges")
}

func BenchmarkE16BetaSensitivity(b *testing.B) {
	t := runExperiment(b, harness.E16BetaSensitivity)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE17Oracle(b *testing.B) { runExperiment(b, harness.E17Oracle) }

// --- Micro-benchmarks of the substrates and core operations. ---

func benchGraph(n int) *graph.Graph {
	return testkit.Dense(n, 42)
}

func BenchmarkHopsetBuild(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			g := benchGraph(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25}, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(h.Size()), "edges")
			}
		})
	}
}

func BenchmarkHopsetBuildPathReporting(b *testing.B) {
	g := benchGraph(256)
	for i := 0; i < b.N; i++ {
		if _, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, RecordPaths: true}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKleinSairamBuild(b *testing.B) {
	g := testkit.Wide(256, 42)
	for i := 0; i < b.N; i++ {
		if _, err := scaling.Build(g, scaling.Params{Epsilon: 0.5}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryApproxSSSP(b *testing.B) {
	g := benchGraph(1024)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25}, nil)
	if err != nil {
		b.Fatal(err)
	}
	a := adj.Build(h.G, h.Extras())
	budget := h.Sched.HopBudget() * (h.Sched.Ell + 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bmf.Run(a, []int32{int32(i % g.N)}, budget, nil)
	}
}

func BenchmarkQueryDijkstraBaseline(b *testing.B) {
	g := benchGraph(1024)
	a := adj.Build(g, nil)
	for i := 0; i < b.N; i++ {
		exact.Dijkstra(a, int32(i%g.N))
	}
}

func BenchmarkSPTExtraction(b *testing.B) {
	g := benchGraph(256)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, RecordPaths: true}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pathrep.BuildSPT(h, int32(i%g.N), 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandHopsetBaseline(b *testing.B) {
	g := benchGraph(256)
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.RandHopset(g, baseline.RandHopsetParams{Epsilon: 0.25, Seed: 1}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnComp(b *testing.B) {
	g := benchGraph(4096)
	for i := 0; i < b.N; i++ {
		conncomp.Build(g, math.Inf(1), nil)
	}
}

func BenchmarkParallelSort(b *testing.B) {
	n := 1 << 18
	base := make([]int64, n)
	for i := range base {
		base[i] = int64((i * 2654435761) % 1000003)
	}
	buf := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		psort.Sort(buf, func(a, b int64) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		}, nil)
	}
}

// BenchmarkRelaxDenseVsSparse compares the dense reference kernel against
// the adaptive frontier-sparse engine on the workloads the engine exists
// for (narrow-frontier single-source scans) and on a dense random graph
// (where the engine should fall back to dense rounds and lose nothing).
// With BENCH_RELAX_JSON=<path> it writes the measurements as JSON — the
// CI benchmark job uploads that file as the BENCH_relax artifact.
func BenchmarkRelaxDenseVsSparse(b *testing.B) {
	type measurement struct {
		Workload     string  `json:"workload"`
		N            int     `json:"n"`
		Arcs         int     `json:"arcs"`
		Rounds       int     `json:"rounds"`
		DenseMS      float64 `json:"dense_ms"`
		SparseMS     float64 `json:"sparse_ms"`
		DenseArcs    int64   `json:"dense_scanned_arcs"`
		SparseArcs   int64   `json:"sparse_scanned_arcs"`
		ArcReduction float64 `json:"arc_reduction"`
		Speedup      float64 `json:"wall_speedup"`
	}
	workloads := []testkit.NamedGraph{
		{Name: "grid-128x128", G: testkit.Grid(128*128, 7)},
		{Name: "roadnet-96x96", G: testkit.Grid(96*96, 7)},
		{Name: "gnm-8192", G: testkit.Dense(8192, 42)},
	}
	var out []measurement
	for _, wl := range workloads {
		a := adj.Build(wl.G, nil)
		src := []int32{int32(wl.G.N / 3)}
		var m measurement
		b.Run(wl.Name, func(b *testing.B) {
			var denseNS, sparseNS int64
			var dense, sparse *relax.Result
			for i := 0; i < b.N; i++ {
				start := time.Now()
				dense = relax.Run(a, src, wl.G.N, relax.Options{ForceDense: true})
				denseNS += time.Since(start).Nanoseconds()
				start = time.Now()
				sparse = relax.Run(a, src, wl.G.N, relax.Options{})
				sparseNS += time.Since(start).Nanoseconds()
			}
			for v := 0; v < wl.G.N; v++ {
				if dense.Dist[v] != sparse.Dist[v] || dense.Parent[v] != sparse.Parent[v] ||
					dense.ParentArc[v] != sparse.ParentArc[v] {
					b.Fatalf("vertex %d: sparse result differs from dense", v)
				}
			}
			m = measurement{
				Workload:     wl.Name,
				N:            wl.G.N,
				Arcs:         a.Arcs(),
				Rounds:       dense.Rounds,
				DenseMS:      float64(denseNS) / float64(b.N) / 1e6,
				SparseMS:     float64(sparseNS) / float64(b.N) / 1e6,
				DenseArcs:    dense.Stats.ScannedArcs,
				SparseArcs:   sparse.Stats.ScannedArcs,
				ArcReduction: float64(dense.Stats.ScannedArcs) / math.Max(1, float64(sparse.Stats.ScannedArcs)),
				Speedup:      float64(denseNS) / math.Max(1, float64(sparseNS)),
			}
			b.ReportMetric(m.ArcReduction, "arc-reduction")
			b.ReportMetric(m.Speedup, "wall-speedup")
		})
		if m.N != 0 { // zero when -bench filtering skipped this workload
			out = append(out, m)
		}
	}
	if path := os.Getenv("BENCH_RELAX_JSON"); path != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// mergeBenchJSON writes value under key into the JSON object at path,
// keeping whatever other benchmarks already wrote there — the two batch
// benchmarks share one BENCH_batch.json artifact regardless of -bench
// filtering or run order.
func mergeBenchJSON(b *testing.B, path, key string, value any) {
	b.Helper()
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			b.Fatalf("%s holds non-object JSON: %v", path, err)
		}
	}
	raw, err := json.Marshal(value)
	if err != nil {
		b.Fatal(err)
	}
	doc[key] = raw
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// blockSources returns k sources packed into a compact block of a
// side×side grid — the ETA-matrix shape (all depots in one district),
// where the batch's 64 waves move in near lock-step and the shared
// traversal pays off most.
func blockSources(side, k int) []int32 {
	out := make([]int32, 0, k)
	for r := 0; len(out) < k; r++ {
		for c := 0; c < 8 && len(out) < k; c++ {
			out = append(out, int32((side/2+r)*side+side/2+c))
		}
	}
	return out
}

// spreadSources returns k sources scattered across [0, n) — the
// worst case for wave overlap, kept as an honest lower bound.
func spreadSources(n, k int) []int32 {
	out := make([]int32, k)
	for i := range out {
		out[i] = int32((i * 131) % n)
	}
	return out
}

// BenchmarkRelaxBatchedVsSequential measures the word-parallel batched
// kernel against 64 sequential single-source runs, and the hopset build
// with the lane path on vs off. Three kernel workloads: a clustered
// source block on a grid (the coalesced-serve shape the ≥4× arc-reduction
// claim is about), spread sources on the same grid (waves overlap barely
// — expect ~1.7×, reported as the honest lower bound), and a gnm expander
// as the negative control (arcs collapse but nearly every vertex is
// re-folded per round, so the wall-clock win is modest). With
// BENCH_BATCH_JSON=<path> the measurements merge into the BENCH_batch
// artifact that cmd/benchgate checks against the committed baseline.
func BenchmarkRelaxBatchedVsSequential(b *testing.B) {
	type kernelRow struct {
		Workload     string  `json:"workload"`
		N            int     `json:"n"`
		Arcs         int     `json:"arcs"`
		Batch        int     `json:"batch"`
		SeqArcs      int64   `json:"sequential_scanned_arcs"`
		BatArcs      int64   `json:"batched_scanned_arcs"`
		SeqMS        float64 `json:"sequential_ms"`
		BatMS        float64 `json:"batched_ms"`
		ArcReduction float64 `json:"arc_reduction"`
		WallSpeedup  float64 `json:"wall_speedup"`
	}
	type buildRow struct {
		Family       string  `json:"family"`
		N            int     `json:"n"`
		RecordMS     float64 `json:"record_ms"`
		LaneMS       float64 `json:"lane_ms"`
		BuildSpeedup float64 `json:"build_speedup"`
	}

	const k = relax.MaxBatch
	gridN := 128 * 128
	grid := testkit.Grid(gridN, 7)
	gnm := testkit.Dense(8192, 42)
	workloads := []struct {
		name    string
		g       *graph.Graph
		sources []int32
	}{
		{"grid-block", grid, blockSources(128, k)},
		{"grid-spread", grid, spreadSources(gridN, k)},
		{"gnm-spread", gnm, spreadSources(gnm.N, k)},
	}
	var kernel []kernelRow
	for _, wl := range workloads {
		a := adj.Build(wl.g, nil)
		var row kernelRow
		b.Run("kernel/"+wl.name, func(b *testing.B) {
			var seqNS, batNS, seqArcs, batArcs int64
			var seq []*relax.Result
			var bat []*relax.Result
			for i := 0; i < b.N; i++ {
				seq = seq[:0]
				seqArcs, batArcs = 0, 0
				start := time.Now()
				for _, s := range wl.sources {
					r := relax.Run(a, []int32{s}, wl.g.N, relax.Options{})
					seqArcs += r.Stats.ScannedArcs
					seq = append(seq, r)
				}
				seqNS += time.Since(start).Nanoseconds()

				var ctr relax.Counters
				start = time.Now()
				bat = relax.RunBatch(a, wl.sources, wl.g.N, relax.Options{Counters: &ctr})
				batNS += time.Since(start).Nanoseconds()
				batArcs = ctr.Snapshot().ScannedArcs
			}
			// Spot-check bit-identity on the last iteration (the full
			// property matrix lives in internal/relax).
			for l := range bat {
				for v := 0; v < wl.g.N; v += 97 {
					if bat[l].Dist[v] != seq[l].Dist[v] || bat[l].Parent[v] != seq[l].Parent[v] {
						b.Fatalf("%s lane %d vertex %d: batched differs from sequential", wl.name, l, v)
					}
				}
			}
			row = kernelRow{
				Workload: wl.name, N: wl.g.N, Arcs: a.Arcs(), Batch: k,
				SeqArcs: seqArcs, BatArcs: batArcs,
				SeqMS:        float64(seqNS) / float64(b.N) / 1e6,
				BatMS:        float64(batNS) / float64(b.N) / 1e6,
				ArcReduction: float64(seqArcs) / math.Max(1, float64(batArcs)),
				WallSpeedup:  float64(seqNS) / math.Max(1, float64(batNS)),
			}
			b.ReportMetric(row.ArcReduction, "arc-reduction")
			b.ReportMetric(row.WallSpeedup, "wall-speedup")
		})
		if row.N != 0 {
			kernel = append(kernel, row)
		}
	}

	families := []testkit.NamedGraph{
		{Name: "grid-2304", G: testkit.Grid(48*48, 7)},
		{Name: "dense-768", G: testkit.Dense(768, 42)},
	}
	var builds []buildRow
	for _, fam := range families {
		var row buildRow
		b.Run("hopset-build/"+fam.Name, func(b *testing.B) {
			defer func() { limbfs.DisableLanes = false }()
			var recNS, laneNS int64
			for i := 0; i < b.N; i++ {
				limbfs.DisableLanes = true
				start := time.Now()
				if _, err := hopset.Build(fam.G, hopset.Params{Epsilon: 0.25}, nil); err != nil {
					b.Fatal(err)
				}
				recNS += time.Since(start).Nanoseconds()
				limbfs.DisableLanes = false
				start = time.Now()
				if _, err := hopset.Build(fam.G, hopset.Params{Epsilon: 0.25}, nil); err != nil {
					b.Fatal(err)
				}
				laneNS += time.Since(start).Nanoseconds()
			}
			row = buildRow{
				Family: fam.Name, N: fam.G.N,
				RecordMS:     float64(recNS) / float64(b.N) / 1e6,
				LaneMS:       float64(laneNS) / float64(b.N) / 1e6,
				BuildSpeedup: float64(recNS) / math.Max(1, float64(laneNS)),
			}
			b.ReportMetric(row.BuildSpeedup, "build-speedup")
		})
		if row.N != 0 {
			builds = append(builds, row)
		}
	}

	if path := os.Getenv("BENCH_BATCH_JSON"); path != "" {
		if len(kernel) > 0 {
			mergeBenchJSON(b, path, "kernel", kernel)
		}
		if len(builds) > 0 {
			mergeBenchJSON(b, path, "hopset_build", builds)
		}
	}
}

// BenchmarkServeCoalescedQPS measures end-to-end query throughput of an
// oracle engine with the coalescing window on vs off: 32 goroutines
// hammer Dist over 48 distinct sources with the distance cache disabled,
// so every query costs an exploration unless the batcher merges it. The
// coalesced engine answers whole bursts with a handful of word-parallel
// batched explorations; qps-speedup is the headline. Results merge into
// the same BENCH_batch.json as the kernel benchmark.
func BenchmarkServeCoalescedQPS(b *testing.B) {
	type serveRow struct {
		N            int     `json:"n"`
		Goroutines   int     `json:"goroutines"`
		Sources      int     `json:"sources"`
		Queries      int     `json:"queries"`
		SoloQPS      float64 `json:"solo_qps"`
		CoalescedQPS float64 `json:"coalesced_qps"`
		QPSSpeedup   float64 `json:"qps_speedup"`
		Batches      int64   `json:"batches"`
		BatchedSeeds int64   `json:"batched_seeds"`
		LargestBatch int64   `json:"largest_batch"`
		AvgWaitMS    float64 `json:"avg_wait_ms"`
	}
	const (
		goroutines = 32
		nSources   = 48
		perG       = 6 // queries per goroutine per iteration
	)
	g := testkit.Grid(64*64, 7)
	solo, err := oracle.New(g, oracle.WithDistCache(-1))
	if err != nil {
		b.Fatal(err)
	}
	coal, err := oracle.New(g, oracle.WithDistCache(-1), oracle.WithBatchWindow(2*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	sources := spreadSources(g.N, nSources)
	storm := func(eng *oracle.Engine) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for q := 0; q < perG; q++ {
					if _, err := eng.Dist(sources[(w*perG+q)%nSources]); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		return time.Since(start)
	}

	var soloNS, coalNS int64
	for i := 0; i < b.N; i++ {
		soloNS += storm(solo).Nanoseconds()
		coalNS += storm(coal).Nanoseconds()
	}
	queries := goroutines * perG
	st := coal.Stats()
	row := serveRow{
		N: g.N, Goroutines: goroutines, Sources: nSources, Queries: queries,
		SoloQPS:      float64(queries) * float64(b.N) / (float64(soloNS) / 1e9),
		CoalescedQPS: float64(queries) * float64(b.N) / (float64(coalNS) / 1e9),
		Batches:      st.Batches,
		BatchedSeeds: st.Relax.BatchedSeeds,
		LargestBatch: st.LargestBatch,
	}
	row.QPSSpeedup = row.CoalescedQPS / math.Max(1, row.SoloQPS)
	if st.BatchedQueries > 0 {
		row.AvgWaitMS = float64(st.BatchWaitNano) / float64(st.BatchedQueries) / 1e6
	}
	b.ReportMetric(row.CoalescedQPS, "coalesced-qps")
	b.ReportMetric(row.QPSSpeedup, "qps-speedup")
	if path := os.Getenv("BENCH_BATCH_JSON"); path != "" {
		mergeBenchJSON(b, path, "serve", row)
	}
}

func BenchmarkBellmanFordRound(b *testing.B) {
	g := benchGraph(4096)
	a := adj.Build(g, nil)
	for i := 0; i < b.N; i++ {
		bmf.Run(a, []int32{0}, 20, nil)
	}
}

func BenchmarkTrackerOverhead(b *testing.B) {
	tr := pram.New()
	for i := 0; i < b.N; i++ {
		tr.Rounds(1, 100)
	}
}
