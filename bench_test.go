// Benchmarks regenerating every experiment of EXPERIMENTS.md (E1–E17; run
// with -benchtime=1x — each iteration performs a full sweep), plus
// micro-benchmarks of the substrate operations. Metrics reported via
// b.ReportMetric are the headline numbers recorded in EXPERIMENTS.md; the
// full tables print under -v.
package repro_test

import (
	"encoding/json"
	"math"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/adj"
	"repro/internal/baseline"
	"repro/internal/bmf"
	"repro/internal/conncomp"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/hopset"
	"repro/internal/pathrep"
	"repro/internal/pram"
	"repro/internal/psort"
	"repro/internal/relax"
	"repro/internal/scaling"
	"repro/internal/testkit"
)

var benchCfg = harness.Config{Quick: true, Seed: 1}

// parseCell converts a numeric table cell.
func parseCell(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

// colIndex finds a column by name (-1 if absent).
func colIndex(t *harness.Table, name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

func reportWorst(b *testing.B, t *harness.Table, col, metric string) {
	b.Helper()
	idx := colIndex(t, col)
	if idx < 0 {
		return
	}
	worst := 0.0
	for _, r := range t.Rows {
		if v := parseCell(r[idx]); !math.IsNaN(v) && v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, metric)
}

func runExperiment(b *testing.B, run func(harness.Config) *harness.Table) *harness.Table {
	b.Helper()
	var t *harness.Table
	for i := 0; i < b.N; i++ {
		t = run(benchCfg)
	}
	b.Log("\n" + t.String())
	okCol := colIndex(t, "ok")
	if okCol < 0 {
		okCol = colIndex(t, "valid")
	}
	if okCol >= 0 {
		for _, r := range t.Rows {
			if r[okCol] == "FAIL" {
				b.Fatalf("%s: failing row %v", t.ID, r)
			}
		}
	}
	return t
}

func BenchmarkE1HopsetSize(b *testing.B) {
	t := runExperiment(b, harness.E1HopsetSize)
	reportWorst(b, t, "|H|/bound", "size/bound")
}

func BenchmarkE2Stretch(b *testing.B) {
	t := runExperiment(b, harness.E2Stretch)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE3Work(b *testing.B) {
	t := runExperiment(b, harness.E3Work)
	reportWorst(b, t, "fit exp", "work-exponent")
}

func BenchmarkE4SSSP(b *testing.B) {
	t := runExperiment(b, harness.E4SSSP)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE5Depth(b *testing.B) {
	t := runExperiment(b, harness.E5Depth)
	reportWorst(b, t, "depth/log³n", "depth/log3n")
}

func BenchmarkE6Phases(b *testing.B)  { runExperiment(b, harness.E6Phases) }
func BenchmarkE13Radii(b *testing.B)  { runExperiment(b, harness.E13Radii) }
func BenchmarkE14Ledger(b *testing.B) { runExperiment(b, harness.E14Ledger) }

func BenchmarkE7Stars(b *testing.B) {
	t := runExperiment(b, harness.E7Stars)
	reportWorst(b, t, "|S|/(n·log n)", "stars/bound")
}

func BenchmarkE8PathReport(b *testing.B) {
	t := runExperiment(b, harness.E8PathReport)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE9KleinSairam(b *testing.B) {
	t := runExperiment(b, harness.E9KleinSairam)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE10Derand(b *testing.B) {
	t := runExperiment(b, harness.E10Derand)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE11HopReduction(b *testing.B) {
	t := runExperiment(b, harness.E11HopReduction)
	reportWorst(b, t, "speedup", "hop-speedup")
}

func BenchmarkE12Speedup(b *testing.B) {
	t := runExperiment(b, harness.E12Speedup)
	reportWorst(b, t, "speedup", "wall-speedup")
}

func BenchmarkE15WeightModes(b *testing.B) {
	t := runExperiment(b, harness.E15WeightModes)
	reportWorst(b, t, "|H|", "edges")
}

func BenchmarkE16BetaSensitivity(b *testing.B) {
	t := runExperiment(b, harness.E16BetaSensitivity)
	reportWorst(b, t, "max stretch", "max-stretch")
}

func BenchmarkE17Oracle(b *testing.B) { runExperiment(b, harness.E17Oracle) }

// --- Micro-benchmarks of the substrates and core operations. ---

func benchGraph(n int) *graph.Graph {
	return testkit.Dense(n, 42)
}

func BenchmarkHopsetBuild(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			g := benchGraph(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25}, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(h.Size()), "edges")
			}
		})
	}
}

func BenchmarkHopsetBuildPathReporting(b *testing.B) {
	g := benchGraph(256)
	for i := 0; i < b.N; i++ {
		if _, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, RecordPaths: true}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKleinSairamBuild(b *testing.B) {
	g := testkit.Wide(256, 42)
	for i := 0; i < b.N; i++ {
		if _, err := scaling.Build(g, scaling.Params{Epsilon: 0.5}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryApproxSSSP(b *testing.B) {
	g := benchGraph(1024)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25}, nil)
	if err != nil {
		b.Fatal(err)
	}
	a := adj.Build(h.G, h.Extras())
	budget := h.Sched.HopBudget() * (h.Sched.Ell + 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bmf.Run(a, []int32{int32(i % g.N)}, budget, nil)
	}
}

func BenchmarkQueryDijkstraBaseline(b *testing.B) {
	g := benchGraph(1024)
	a := adj.Build(g, nil)
	for i := 0; i < b.N; i++ {
		exact.Dijkstra(a, int32(i%g.N))
	}
}

func BenchmarkSPTExtraction(b *testing.B) {
	g := benchGraph(256)
	h, err := hopset.Build(g, hopset.Params{Epsilon: 0.25, RecordPaths: true}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pathrep.BuildSPT(h, int32(i%g.N), 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandHopsetBaseline(b *testing.B) {
	g := benchGraph(256)
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.RandHopset(g, baseline.RandHopsetParams{Epsilon: 0.25, Seed: 1}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnComp(b *testing.B) {
	g := benchGraph(4096)
	for i := 0; i < b.N; i++ {
		conncomp.Build(g, math.Inf(1), nil)
	}
}

func BenchmarkParallelSort(b *testing.B) {
	n := 1 << 18
	base := make([]int64, n)
	for i := range base {
		base[i] = int64((i * 2654435761) % 1000003)
	}
	buf := make([]int64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		psort.Sort(buf, func(a, b int64) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		}, nil)
	}
}

// BenchmarkRelaxDenseVsSparse compares the dense reference kernel against
// the adaptive frontier-sparse engine on the workloads the engine exists
// for (narrow-frontier single-source scans) and on a dense random graph
// (where the engine should fall back to dense rounds and lose nothing).
// With BENCH_RELAX_JSON=<path> it writes the measurements as JSON — the
// CI benchmark job uploads that file as the BENCH_relax artifact.
func BenchmarkRelaxDenseVsSparse(b *testing.B) {
	type measurement struct {
		Workload     string  `json:"workload"`
		N            int     `json:"n"`
		Arcs         int     `json:"arcs"`
		Rounds       int     `json:"rounds"`
		DenseMS      float64 `json:"dense_ms"`
		SparseMS     float64 `json:"sparse_ms"`
		DenseArcs    int64   `json:"dense_scanned_arcs"`
		SparseArcs   int64   `json:"sparse_scanned_arcs"`
		ArcReduction float64 `json:"arc_reduction"`
		Speedup      float64 `json:"wall_speedup"`
	}
	workloads := []testkit.NamedGraph{
		{Name: "grid-128x128", G: testkit.Grid(128*128, 7)},
		{Name: "roadnet-96x96", G: testkit.Grid(96*96, 7)},
		{Name: "gnm-8192", G: testkit.Dense(8192, 42)},
	}
	var out []measurement
	for _, wl := range workloads {
		a := adj.Build(wl.G, nil)
		src := []int32{int32(wl.G.N / 3)}
		var m measurement
		b.Run(wl.Name, func(b *testing.B) {
			var denseNS, sparseNS int64
			var dense, sparse *relax.Result
			for i := 0; i < b.N; i++ {
				start := time.Now()
				dense = relax.Run(a, src, wl.G.N, relax.Options{ForceDense: true})
				denseNS += time.Since(start).Nanoseconds()
				start = time.Now()
				sparse = relax.Run(a, src, wl.G.N, relax.Options{})
				sparseNS += time.Since(start).Nanoseconds()
			}
			for v := 0; v < wl.G.N; v++ {
				if dense.Dist[v] != sparse.Dist[v] || dense.Parent[v] != sparse.Parent[v] ||
					dense.ParentArc[v] != sparse.ParentArc[v] {
					b.Fatalf("vertex %d: sparse result differs from dense", v)
				}
			}
			m = measurement{
				Workload:     wl.Name,
				N:            wl.G.N,
				Arcs:         a.Arcs(),
				Rounds:       dense.Rounds,
				DenseMS:      float64(denseNS) / float64(b.N) / 1e6,
				SparseMS:     float64(sparseNS) / float64(b.N) / 1e6,
				DenseArcs:    dense.Stats.ScannedArcs,
				SparseArcs:   sparse.Stats.ScannedArcs,
				ArcReduction: float64(dense.Stats.ScannedArcs) / math.Max(1, float64(sparse.Stats.ScannedArcs)),
				Speedup:      float64(denseNS) / math.Max(1, float64(sparseNS)),
			}
			b.ReportMetric(m.ArcReduction, "arc-reduction")
			b.ReportMetric(m.Speedup, "wall-speedup")
		})
		if m.N != 0 { // zero when -bench filtering skipped this workload
			out = append(out, m)
		}
	}
	if path := os.Getenv("BENCH_RELAX_JSON"); path != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBellmanFordRound(b *testing.B) {
	g := benchGraph(4096)
	a := adj.Build(g, nil)
	for i := 0; i < b.N; i++ {
		bmf.Run(a, []int32{0}, 20, nil)
	}
}

func BenchmarkTrackerOverhead(b *testing.B) {
	tr := pram.New()
	for i := 0; i < b.N; i++ {
		tr.Rounds(1, 100)
	}
}
