package graphio

// The .csrg container: the repository's versioned binary CSR graph
// format, designed so a multi-graph registry can cold-start at disk
// bandwidth. The five sections are exactly the storage of graph.Graph
// (CSR offsets, neighbors, weights, edge ids, and the canonical edge
// list), little-endian, 8-byte aligned, each protected by a CRC-32C — so
// on little-endian hosts OpenCSRG can mmap the file and alias the graph's
// slices straight into the page cache: no per-edge parsing, no per-edge
// allocation.
//
// Layout (all integers little-endian):
//
//	off   size  field
//	0     4     magic "CSRG"
//	4     4     version (currently 1)
//	8     8     n    vertices
//	16    8     m    undirected edges
//	24    8     arcs directed arcs (= 2m)
//	32    8     flags (reserved, 0)
//	40    120   5 section descriptors {offset u64, length u64, crc32c u32, pad u32}
//	            in order: off[(n+1)·u32] nbr[arcs·u32] wt[arcs·f64]
//	                      eid[arcs·u32] edges[m·{u32,u32,f64}]
//	160   4     crc32c of bytes [0,160)
//	164   4     pad (0)
//	168   …     sections, each 8-byte aligned
//
// Readers fully validate: header CRC, section bounds/lengths against the
// file size before any allocation, per-section CRCs, and the structural
// CSR invariants (sorted strict adjacency, arc↔edge agreement, canonical
// sorted edge list, positive finite weights) — a malformed or truncated
// file yields an error, never a panic and never an invalid graph.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/par"
)

const (
	csrgMagic      = "CSRG"
	csrgVersion    = 1
	csrgSections   = 5
	csrgHeaderSize = 168
	csrgCRCOffset  = 160
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// leHost reports whether this machine is little-endian; only then can the
// on-disk bytes alias Go slices.
var leHost = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// edgeCastable reports whether graph.Edge has the exact {u32,u32,f64}
// layout the edges section stores, making a byte-level cast valid.
var edgeCastable = unsafe.Sizeof(graph.Edge{}) == 16 &&
	unsafe.Offsetof(graph.Edge{}.U) == 0 &&
	unsafe.Offsetof(graph.Edge{}.V) == 4 &&
	unsafe.Offsetof(graph.Edge{}.W) == 8

type csrgSection struct {
	off, length int64
	crc         uint32
}

type csrgHeader struct {
	n, m, arcs int
	sec        [csrgSections]csrgSection
}

func align8(x int64) int64 { return (x + 7) &^ 7 }

// sectionLengths returns the expected byte length of every section.
func sectionLengths(n, m, arcs int64) [csrgSections]int64 {
	return [csrgSections]int64{4 * (n + 1), 4 * arcs, 8 * arcs, 4 * arcs, 16 * m}
}

// --- byte views -----------------------------------------------------------

func i32bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func f64bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

func edgebytes(s []graph.Edge) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 16*len(s))
}

func bytesToI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func bytesToF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func bytesToEdges(b []byte) []graph.Edge {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*graph.Edge)(unsafe.Pointer(&b[0])), len(b)/16)
}

// sectionViews returns the five section payloads of g as little-endian
// byte slices. On little-endian hosts the views alias g's storage (no
// copy); otherwise they are freshly encoded.
func sectionViews(g *graph.Graph) [csrgSections][]byte {
	if leHost && edgeCastable {
		return [csrgSections][]byte{
			i32bytes(g.Off), i32bytes(g.Nbr), f64bytes(g.Wt), i32bytes(g.EID), edgebytes(g.Edges),
		}
	}
	var out [csrgSections][]byte
	out[0] = encodeI32(g.Off)
	out[1] = encodeI32(g.Nbr)
	out[2] = encodeF64(g.Wt)
	out[3] = encodeI32(g.EID)
	buf := make([]byte, 16*len(g.Edges))
	for i, e := range g.Edges {
		binary.LittleEndian.PutUint32(buf[16*i:], uint32(e.U))
		binary.LittleEndian.PutUint32(buf[16*i+4:], uint32(e.V))
		binary.LittleEndian.PutUint64(buf[16*i+8:], math.Float64bits(e.W))
	}
	out[4] = buf
	return out
}

func encodeI32(s []int32) []byte {
	buf := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return buf
}

func encodeF64(s []float64) []byte {
	buf := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// --- writer ---------------------------------------------------------------

// WriteCSRG writes g as a .csrg container. The output is deterministic:
// the same graph always produces the same bytes.
func WriteCSRG(w io.Writer, g *graph.Graph) error {
	views := sectionViews(g)
	var hdr [csrgHeaderSize]byte
	copy(hdr[0:4], csrgMagic)
	binary.LittleEndian.PutUint32(hdr[4:], csrgVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.N))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.M()))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.Arcs()))
	cur := int64(csrgHeaderSize)
	for i, v := range views {
		cur = align8(cur)
		d := hdr[40+24*i:]
		binary.LittleEndian.PutUint64(d[0:], uint64(cur))
		binary.LittleEndian.PutUint64(d[8:], uint64(len(v)))
		binary.LittleEndian.PutUint32(d[16:], crc32.Checksum(v, castagnoli))
		cur += int64(len(v))
	}
	binary.LittleEndian.PutUint32(hdr[csrgCRCOffset:], crc32.Checksum(hdr[:csrgCRCOffset], castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var pad [8]byte
	written := int64(csrgHeaderSize)
	for _, v := range views {
		if p := align8(written) - written; p > 0 {
			if _, err := w.Write(pad[:p]); err != nil {
				return err
			}
			written += p
		}
		if _, err := w.Write(v); err != nil {
			return err
		}
		written += int64(len(v))
	}
	return nil
}

// --- reader ---------------------------------------------------------------

func csrgErr(format string, args ...any) error {
	return fmt.Errorf("%w: csrg: %s", ErrFormat, fmt.Sprintf(format, args...))
}

// parseCSRGHeader validates the fixed header against the total size and
// returns the decoded section table.
func parseCSRGHeader(hdr []byte, size int64) (csrgHeader, error) {
	if len(hdr) < csrgHeaderSize {
		return csrgHeader{}, csrgErr("truncated header (%d bytes)", len(hdr))
	}
	if string(hdr[0:4]) != csrgMagic {
		return csrgHeader{}, csrgErr("bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != csrgVersion {
		return csrgHeader{}, csrgErr("unsupported version %d", v)
	}
	if got, want := binary.LittleEndian.Uint32(hdr[csrgCRCOffset:]), crc32.Checksum(hdr[:csrgCRCOffset], castagnoli); got != want {
		return csrgHeader{}, csrgErr("header checksum mismatch")
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	m := binary.LittleEndian.Uint64(hdr[16:])
	arcs := binary.LittleEndian.Uint64(hdr[24:])
	if n == 0 || n > math.MaxInt32 || m > math.MaxInt32 || arcs != 2*m {
		return csrgHeader{}, csrgErr("implausible counts n=%d m=%d arcs=%d", n, m, arcs)
	}
	out := csrgHeader{n: int(n), m: int(m), arcs: int(arcs)}
	want := sectionLengths(int64(n), int64(m), int64(arcs))
	for i := 0; i < csrgSections; i++ {
		d := hdr[40+24*i:]
		off := binary.LittleEndian.Uint64(d[0:])
		length := binary.LittleEndian.Uint64(d[8:])
		if int64(length) != want[i] {
			return csrgHeader{}, csrgErr("section %d length %d, want %d", i, length, want[i])
		}
		if off%8 != 0 || off < csrgHeaderSize || off > uint64(size) || uint64(size)-off < length {
			return csrgHeader{}, csrgErr("section %d out of bounds (off %d len %d size %d)", i, off, length, size)
		}
		out.sec[i] = csrgSection{off: int64(off), length: int64(length), crc: binary.LittleEndian.Uint32(d[16:])}
	}
	return out, nil
}

// graphFromViews validates the five decoded sections and assembles the
// graph. The slices are retained.
func graphFromViews(h csrgHeader, off, nbr []int32, wt []float64, eid []int32, edges []graph.Edge) (*graph.Graph, error) {
	g := &graph.Graph{N: h.n, Off: off, Nbr: nbr, Wt: wt, EID: eid, Edges: edges}
	if err := validateCSR(g); err != nil {
		return nil, err
	}
	return g, nil
}

// validateCSR checks every structural invariant graph.FromEdges
// guarantees, in parallel over fixed chunks (deterministic error choice).
func validateCSR(g *graph.Graph) error {
	n, m := g.N, len(g.Edges)
	if g.Off[0] != 0 || int(g.Off[n]) != len(g.Nbr) {
		return csrgErr("offset fence broken")
	}
	for v := 0; v < n; v++ {
		if g.Off[v+1] < g.Off[v] {
			return csrgErr("offsets not monotone at vertex %d", v)
		}
	}
	errs := make([]error, par.Chunks(n))
	par.For(len(errs), func(c int) {
		lo, hi := par.FixedChunkBounds(n, c)
		for v := lo; v < hi; v++ {
			for i := int(g.Off[v]); i < int(g.Off[v+1]); i++ {
				nb := g.Nbr[i]
				if nb < 0 || int(nb) >= n || int(nb) == v {
					errs[c] = csrgErr("vertex %d: neighbor %d out of range", v, nb)
					return
				}
				if i > int(g.Off[v]) && g.Nbr[i-1] >= nb {
					errs[c] = csrgErr("vertex %d: adjacency not strictly sorted", v)
					return
				}
				id := g.EID[i]
				if id < 0 || int(id) >= m {
					errs[c] = csrgErr("vertex %d: edge id %d out of range", v, id)
					return
				}
				e := g.Edges[id]
				u, w := int32(v), nb
				if u > w {
					u, w = w, u
				}
				if e.U != u || e.V != w || e.W != g.Wt[i] {
					errs[c] = csrgErr("vertex %d: arc %d disagrees with edge %d", v, i, id)
					return
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	errs = make([]error, par.Chunks(m))
	par.For(len(errs), func(c int) {
		lo, hi := par.FixedChunkBounds(m, c)
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			if e.U < 0 || e.V <= e.U || int(e.V) >= n {
				errs[c] = csrgErr("edge %d: bad endpoints (%d,%d)", i, e.U, e.V)
				return
			}
			if !(e.W > 0) || math.IsInf(e.W, 0) || math.IsNaN(e.W) {
				errs[c] = csrgErr("edge %d: bad weight %v", i, e.W)
				return
			}
			if i > 0 {
				// Reading the previous chunk's last edge is a concurrent
				// read of immutable data — CREW-safe.
				p := g.Edges[i-1]
				if p.U > e.U || p.U == e.U && p.V >= e.V {
					errs[c] = csrgErr("edge list not in canonical order at %d", i)
					return
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadCSRG reads a .csrg container through io.ReaderAt — the portable
// (and big-endian-safe) path: sections are copied into fresh slices. Use
// OpenCSRG for the zero-copy mmap open.
func ReadCSRG(r io.ReaderAt, size int64) (*graph.Graph, error) {
	hdr := make([]byte, csrgHeaderSize)
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, csrgErr("reading header: %v", err)
	}
	h, err := parseCSRGHeader(hdr, size)
	if err != nil {
		return nil, err
	}
	read := func(i int) ([]byte, error) {
		if h.sec[i].length == 0 {
			// An edgeless graph has empty sections; ReadAt at EOF would
			// error on the zero-length read.
			if h.sec[i].crc != 0 {
				return nil, csrgErr("section %d checksum mismatch", i)
			}
			return nil, nil
		}
		buf := make([]byte, h.sec[i].length)
		if _, err := r.ReadAt(buf, h.sec[i].off); err != nil {
			return nil, csrgErr("reading section %d: %v", i, err)
		}
		if crc32.Checksum(buf, castagnoli) != h.sec[i].crc {
			return nil, csrgErr("section %d checksum mismatch", i)
		}
		return buf, nil
	}
	var raw [csrgSections][]byte
	for i := range raw {
		if raw[i], err = read(i); err != nil {
			return nil, err
		}
	}
	var (
		off, nbr, eid []int32
		wt            []float64
		edges         []graph.Edge
	)
	if leHost && edgeCastable {
		// The buffers were freshly allocated (8-byte aligned), so the typed
		// views alias them directly.
		off, nbr, eid = bytesToI32(raw[0]), bytesToI32(raw[1]), bytesToI32(raw[3])
		wt = bytesToF64(raw[2])
		edges = bytesToEdges(raw[4])
	} else {
		off, nbr, eid = decodeI32(raw[0]), decodeI32(raw[1]), decodeI32(raw[3])
		wt = decodeF64(raw[2])
		edges = make([]graph.Edge, h.m)
		for i := range edges {
			b := raw[4][16*i:]
			edges[i] = graph.Edge{
				U: int32(binary.LittleEndian.Uint32(b)),
				V: int32(binary.LittleEndian.Uint32(b[4:])),
				W: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
			}
		}
	}
	return graphFromViews(h, off, nbr, wt, eid, edges)
}

func decodeI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func decodeF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Mapped is an opened .csrg container. The Graph aliases the mapping when
// ZeroCopy reports true, so it must not be used after Close; LoadFile
// instead ties the mapping's lifetime to the graph via a GC cleanup.
type Mapped struct {
	g     *graph.Graph
	zero  bool
	unmap func() error
}

// Graph returns the contained graph (valid until Close when ZeroCopy).
func (m *Mapped) Graph() *graph.Graph { return m.g }

// ZeroCopy reports whether the graph's storage aliases the file mapping.
func (m *Mapped) ZeroCopy() bool { return m.zero }

// Close releases the mapping. Idempotent.
func (m *Mapped) Close() error {
	u := m.unmap
	m.unmap = nil
	if u != nil {
		return u()
	}
	return nil
}

// OpenCSRG opens path zero-copy when the platform allows (unix mmap,
// little-endian host): the graph's CSR slices alias the read-only file
// mapping, so opening costs the header parse, the checksum scans, and the
// structural validation — no per-edge decoding or allocation. Elsewhere
// it falls back to ReadCSRG. Checksums and structure are always verified.
func OpenCSRG(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size < csrgHeaderSize {
		f.Close()
		return nil, csrgErr("file too small (%d bytes)", size)
	}
	if leHost && edgeCastable {
		if data, unmap, err := mapFile(f, size); err == nil {
			f.Close() // the mapping outlives the descriptor
			g, perr := parseMapped(data, size)
			if perr != nil {
				unmap()
				return nil, perr
			}
			return &Mapped{g: g, zero: true, unmap: unmap}, nil
		}
	}
	defer f.Close()
	g, err := ReadCSRG(f, size)
	if err != nil {
		return nil, err
	}
	return &Mapped{g: g, unmap: func() error { return nil }}, nil
}

// parseMapped builds the zero-copy graph over one mapped byte range.
func parseMapped(data []byte, size int64) (*graph.Graph, error) {
	h, err := parseCSRGHeader(data[:csrgHeaderSize], size)
	if err != nil {
		return nil, err
	}
	view := func(i int) ([]byte, error) {
		s := data[h.sec[i].off : h.sec[i].off+h.sec[i].length]
		if crc32.Checksum(s, castagnoli) != h.sec[i].crc {
			return nil, csrgErr("section %d checksum mismatch", i)
		}
		return s, nil
	}
	var raw [csrgSections][]byte
	for i := range raw {
		if raw[i], err = view(i); err != nil {
			return nil, err
		}
	}
	return graphFromViews(h,
		bytesToI32(raw[0]), bytesToI32(raw[1]), bytesToF64(raw[2]), bytesToI32(raw[3]), bytesToEdges(raw[4]))
}
