# Nodes: 5 Edges: 6
# tiny shared test graph
0 1 1.5
0 2 2
1 2 1
1 3 4
2 4 2.5
3 4 1
