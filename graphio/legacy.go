package graphio

// The legacy codec: the repository's original text format, folded in from
// internal/graph so there is exactly one copy of the parsing and
// validation logic. Old files stay readable forever; writes through
// Encode(…, FormatLegacy) warn once per process.
//
//	c free-form comment lines
//	p <n> <m>
//	e <u> <v> <w>     (m lines, 0-based vertices, float weight)

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"repro/internal/graph"
)

var legacyWarn sync.Once

func warnLegacyOnce() {
	legacyWarn.Do(func() {
		fmt.Fprintln(os.Stderr, "graphio: warning: the legacy text format is deprecated; write .csrg (or DIMACS .gr) instead")
	})
}

// EncodeLegacy writes g in the legacy text format, byte-identical to the
// historical internal/graph.Encode — engine snapshots embed this section,
// so the bytes are load-bearing.
//
// Deprecated: new artifacts should use Encode with FormatCSRG (or
// FormatDIMACS for interchange); EncodeLegacy remains for snapshot
// sections and old tooling.
func EncodeLegacy(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N, g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "e %d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeLegacy reads a graph in the legacy text format.
func DecodeLegacy(r io.Reader) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeLegacy(data, config{})
}

// scanHeader returns the first significant line of data (skipping blanks
// and lines isComment accepts), its 1-based line number, and the byte
// offset just past it. ok is false when data has no significant line.
func scanHeader(data []byte, isComment func([]byte) bool) (line []byte, lineNo, rest int, ok bool) {
	off := 0
	no := 0
	for off < len(data) {
		l, r := nextLine(data[off:])
		no++
		next := len(data) - len(r)
		t := trimSpace(l)
		if len(t) > 0 && !isComment(t) {
			return t, no, next, true
		}
		off = next
	}
	return nil, no, off, false
}

func legacyComment(line []byte) bool { return line[0] == 'c' }

func decodeLegacy(data []byte, cfg config) (*graph.Graph, error) {
	header, headLine, body, ok := scanHeader(data, legacyComment)
	if !ok {
		return nil, fmt.Errorf("%w: missing p line", ErrFormat)
	}
	f := fieldsOf(header)
	if len(f) == 0 { // e.g. a line of bare commas: non-blank, zero fields
		return nil, lineErr(FormatLegacy, headLine, "malformed line")
	}
	switch string(f[0]) {
	case "p":
	case "e":
		return nil, lineErr(FormatLegacy, headLine, "e before p")
	default:
		return nil, lineErr(FormatLegacy, headLine, "unknown record %q", string(f[0]))
	}
	if len(f) != 3 {
		return nil, lineErr(FormatLegacy, headLine, "p line wants \"p <n> <m>\"")
	}
	n, err1 := strconv.Atoi(bstr(f[1]))
	m, err2 := strconv.Atoi(bstr(f[2]))
	if err1 != nil || err2 != nil || n <= 0 || m < 0 {
		return nil, lineErr(FormatLegacy, headLine, "bad p line")
	}

	edges, merged, err := parseText(data[body:], cfg.workers, func(chunk []byte, firstLine int, res *chunkResult) {
		parseLegacyChunk(chunk, headLine+firstLine, res)
	})
	if err != nil {
		return nil, err
	}
	if merged.recs != m {
		return nil, fmt.Errorf("%w: expected %d edges, got %d", ErrFormat, m, merged.recs)
	}
	return build(n, edges)
}

// parseLegacyChunk parses one newline-aligned chunk of e-lines. firstLine
// is the global 1-based line number of the chunk's first line.
func parseLegacyChunk(chunk []byte, firstLine int, res *chunkResult) {
	line := firstLine
	var fbuf [][]byte
	for len(chunk) > 0 {
		var raw []byte
		raw, chunk = nextLine(chunk)
		raw = trimSpace(raw)
		no := line
		line++
		if len(raw) == 0 || raw[0] == 'c' {
			continue
		}
		fbuf = appendFields(fbuf[:0], raw)
		if len(fbuf) == 0 {
			res.err = lineErr(FormatLegacy, no, "malformed line")
			return
		}
		switch string(fbuf[0]) {
		case "e":
			if len(fbuf) != 4 {
				res.err = lineErr(FormatLegacy, no, "e line wants \"e <u> <v> <w>\"")
				return
			}
			u, err1 := strconv.ParseInt(bstr(fbuf[1]), 10, 32)
			v, err2 := strconv.ParseInt(bstr(fbuf[2]), 10, 32)
			w, err3 := strconv.ParseFloat(bstr(fbuf[3]), 64)
			if err1 != nil || err2 != nil || err3 != nil {
				res.err = lineErr(FormatLegacy, no, "bad e line")
				return
			}
			res.edges = append(res.edges, graph.Edge{U: int32(u), V: int32(v), W: w})
			res.recs++
		case "p":
			res.err = lineErr(FormatLegacy, no, "duplicate p line")
			return
		default:
			res.err = lineErr(FormatLegacy, no, "unknown record %q", string(fbuf[0]))
			return
		}
	}
}
