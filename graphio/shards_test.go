package graphio

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/testkit"
)

// TestWriteShardsRoundTrip partitions a graph, writes the sharded
// container set, reloads it through the manifest, and checks that every
// shard subgraph, vertex map, and cut edge survives bit-identically.
func TestWriteShardsRoundTrip(t *testing.T) {
	g := testkit.Grid(400, 3)
	res := partition.Partition(g, 4)
	dir := t.TempDir()

	path, err := WriteShards(dir, "grid", res)
	if err != nil {
		t.Fatal(err)
	}
	if !IsShardManifestPath(path) || ShardManifestName(path) != "grid" {
		t.Fatalf("manifest path %q", path)
	}

	man, err := LoadShardManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if man.K != res.K || man.N != res.N || man.M != g.M() {
		t.Fatalf("manifest shape: k=%d n=%d m=%d, want k=%d n=%d m=%d",
			man.K, man.N, man.M, res.K, res.N, g.M())
	}
	if !reflect.DeepEqual(man.Part(), res.Part) {
		t.Fatal("reconstructed Part differs from the partitioner's")
	}
	if len(man.CutEdges) != len(res.CutEdges) {
		t.Fatalf("cut edges: %d, want %d", len(man.CutEdges), len(res.CutEdges))
	}
	for i, ce := range man.CutEdges {
		e := res.CutEdges[i]
		if ce.U != e.U || ce.V != e.V || ce.W != e.W {
			t.Fatalf("cut edge %d: %+v vs %+v", i, ce, e)
		}
	}
	for i := range man.Shards {
		sg, err := man.LoadShard(dir, i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sg.Vertices, res.Shards[i].Vertices) {
			t.Fatalf("shard %d vertex map differs", i)
		}
		if !reflect.DeepEqual(sg.G.Edges, res.Shards[i].G.Edges) ||
			!reflect.DeepEqual(sg.G.Off, res.Shards[i].G.Off) {
			t.Fatalf("shard %d graph differs after container round-trip", i)
		}
	}
}

// TestLoadShardManifestRejectsCorruption walks the validation surface:
// every structural lie in the manifest must fail loudly at load time.
func TestLoadShardManifestRejectsCorruption(t *testing.T) {
	g := testkit.Gnm(120, 7)
	res := partition.Partition(g, 2)
	dir := t.TempDir()
	path, err := WriteShards(dir, "gnm", res)
	if err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name, from, to string) {
		t.Helper()
		mangled := strings.Replace(string(good), from, to, 1)
		if mangled == string(good) {
			t.Fatalf("%s: replacement %q not found in manifest", name, from)
		}
		bad := filepath.Join(dir, "bad"+ShardManifestSuffix)
		if err := os.WriteFile(bad, []byte(mangled), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadShardManifest(bad); err == nil {
			t.Fatalf("%s: corrupted manifest loaded without error", name)
		}
	}
	corrupt("version", `"version": 1`, `"version": 99`)
	corrupt("k-mismatch", `"k": 2`, `"k": 3`)
	corrupt("n-shrunk", `"n": 120`, `"n": 60`)

	// A truncated shard container must fail at LoadShard with a manifest
	// mismatch or container error, never a silent wrong graph.
	man, err := LoadShardManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	sh0 := filepath.Join(dir, man.Shards[0].File)
	data, err := os.ReadFile(sh0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sh0, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := man.LoadShard(dir, 0); err == nil {
		t.Fatal("truncated shard container loaded without error")
	}
}

// TestWriteShardsK1 pins the degenerate single-shard layout: one
// container holding the whole graph and an empty cut set.
func TestWriteShardsK1(t *testing.T) {
	g := testkit.Social(90, 2)
	res := partition.Partition(g, 1)
	dir := t.TempDir()
	path, err := WriteShards(dir, "soc", res)
	if err != nil {
		t.Fatal(err)
	}
	man, err := LoadShardManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if man.K != 1 || len(man.CutEdges) != 0 || man.Shards[0].N != g.N {
		t.Fatalf("K=1 manifest: %+v", man)
	}
	sg, err := man.LoadShard(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sg.G.Edges, g.Edges) {
		t.Fatal("single shard differs from input graph")
	}
}
