package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/par"
	"repro/internal/testkit"
)

func checksumOf(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }
func putU32(b []byte, v uint32)  { binary.LittleEndian.PutUint32(b, v) }

// TestCSRGRoundTripFamilies: every testkit family survives the container
// bit-exactly, and the writer is deterministic.
func TestCSRGRoundTripFamilies(t *testing.T) {
	for _, ng := range testkit.Mix(150, 3) {
		var buf bytes.Buffer
		if err := WriteCSRG(&buf, ng.G); err != nil {
			t.Fatalf("%s: %v", ng.Name, err)
		}
		var buf2 bytes.Buffer
		if err := WriteCSRG(&buf2, ng.G); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: writer is not deterministic", ng.Name)
		}
		got, err := ReadCSRG(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("%s: %v", ng.Name, err)
		}
		sameGraph(t, got, ng.G, ng.Name)
		var buf3 bytes.Buffer
		if err := WriteCSRG(&buf3, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf3.Bytes()) {
			t.Fatalf("%s: decode→re-encode is not bit-identical", ng.Name)
		}
	}
}

// TestOpenCSRGMmap: the zero-copy open agrees with the portable reader,
// and LoadFile's GC-managed variant works.
func TestOpenCSRGMmap(t *testing.T) {
	g := testkit.Grid(400, 9)
	path := filepath.Join(t.TempDir(), "g.csrg")
	if err := EncodeFile(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := OpenCSRG(path)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, m.Graph(), g, "mmap")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}

	got, f, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f != FormatCSRG {
		t.Fatalf("format %s", f)
	}
	sameGraph(t, got, g, "LoadFile csrg")
}

// TestCSRGCorruption flips one byte in every section (and the header) and
// expects the checksums to catch each, plus truncation and bad magic.
func TestCSRGCorruption(t *testing.T) {
	g := testkit.Gnm(200, 4)
	var buf bytes.Buffer
	if err := WriteCSRG(&buf, g); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	read := func(b []byte) error {
		_, err := ReadCSRG(bytes.NewReader(b), int64(len(b)))
		return err
	}
	if err := read(img); err != nil {
		t.Fatalf("pristine image: %v", err)
	}
	// One corruption probe per region: header + each section's first byte.
	probes := []int{8 /* n field */, csrgHeaderSize + 1}
	h, err := parseCSRGHeader(img[:csrgHeaderSize], int64(len(img)))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range h.sec {
		if s.length > 0 {
			probes = append(probes, int(s.off))
		}
	}
	for _, p := range probes {
		bad := bytes.Clone(img)
		bad[p] ^= 0xff
		if err := read(bad); err == nil {
			t.Errorf("corruption at byte %d went undetected", p)
		} else if !errors.Is(err, ErrFormat) {
			t.Errorf("corruption at %d: error %v does not wrap ErrFormat", p, err)
		}
	}
	for _, cut := range []int{0, 3, csrgHeaderSize - 1, csrgHeaderSize, len(img) - 1} {
		if err := read(img[:cut]); err == nil {
			t.Errorf("truncation to %d bytes went undetected", cut)
		}
	}
	bad := bytes.Clone(img)
	copy(bad, "NOPE")
	if err := read(bad); err == nil {
		t.Error("bad magic went undetected")
	}
	// A structurally invalid graph with valid checksums must still fail:
	// point an arc at a different edge id and refresh every checksum.
	mut := append([]byte(nil), img...)
	eidOff := h.sec[3].off
	mut[eidOff] ^= 1
	rewriteChecksums(t, mut, h)
	if err := read(mut); err == nil {
		t.Error("arc/edge disagreement went undetected")
	}
	// Also through the mmap path.
	dir := t.TempDir()
	badPath := filepath.Join(dir, "bad.csrg")
	if err := os.WriteFile(badPath, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCSRG(badPath); err == nil {
		t.Error("mmap open accepted an invalid graph")
	}
}

// rewriteChecksums recomputes the section and header CRCs of img in
// place, so structural (non-checksum) validation can be tested alone.
func rewriteChecksums(t *testing.T, img []byte, h csrgHeader) {
	t.Helper()
	for i, s := range h.sec {
		c := checksumOf(img[s.off : s.off+s.length])
		putU32(img[40+24*i+16:], c)
	}
	putU32(img[csrgCRCOffset:], checksumOf(img[:csrgCRCOffset]))
}

// TestOpenCSRGZeroCopyAllocs is the zero-copy acceptance check: opening a
// container must not allocate per edge — the allocation count stays flat
// as the graph grows 16×.
func TestOpenCSRGZeroCopyAllocs(t *testing.T) {
	old := par.SetWorkers(1) // keep validation sequential so allocs are stable
	defer par.SetWorkers(old)
	dir := t.TempDir()
	paths := [2]string{}
	for i, n := range []int{1_000, 16_000} {
		g := testkit.Gnm(n, 7)
		paths[i] = filepath.Join(dir, "g"+string(rune('0'+i))+".csrg")
		if err := EncodeFile(paths[i], g); err != nil {
			t.Fatal(err)
		}
	}
	allocs := [2]float64{}
	for i, path := range paths {
		allocs[i] = testing.AllocsPerRun(10, func() {
			m, err := OpenCSRG(path)
			if err != nil {
				t.Fatal(err)
			}
			if !m.ZeroCopy() {
				t.Skip("platform has no zero-copy open")
			}
			m.Close()
		})
	}
	if allocs[1] > allocs[0]+8 {
		t.Fatalf("open allocations scale with graph size: %v for 1k vertices, %v for 16k", allocs[0], allocs[1])
	}
}
