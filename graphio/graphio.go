// Package graphio is the ingestion layer between on-disk graph datasets
// and the oracle engine: streaming, chunk-parallel parsers for the common
// text formats (DIMACS .gr, whitespace/CSV edge lists, METIS adjacency,
// and the repository's legacy "p/e" format), transparent gzip handling,
// and a versioned binary CSR container (.csrg) that opens zero-copy via
// mmap so cold-starting a multi-graph registry is bounded by disk
// bandwidth instead of parse speed.
//
// Everything is deterministic: parsing splits the input into fixed
// byte-chunks that depend only on the bytes (never on the worker count),
// parses chunks in parallel, and merges results in chunk order before the
// canonical edge sort — so the resulting graph (and any re-encoding of it)
// is byte-identical across 1, 2, or 64 parser workers, the same
// discipline as internal/relax.
//
//	g, format, err := graphio.LoadFile("USA-road-d.NY.gr")   // auto-detect
//	err = graphio.EncodeFile("ny.csrg", g)                    // convert
//	g2, _, err := graphio.LoadFile("ny.csrg")                 // zero-copy
//
// Self loops in DIMACS, edge-list, and METIS inputs are dropped (they
// never lie on shortest paths and the paper's model excludes them);
// parallel edges collapse to the lightest. The legacy format keeps its
// original strict behavior.
package graphio

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/graph"
)

// ErrFormat is wrapped by every parse error for malformed input.
var ErrFormat = errors.New("graphio: bad format")

// config is the resolved option set of a decode call.
type config struct {
	workers int
	format  Format
}

// Option configures a Decode/LoadFile call.
type Option func(*config)

// WithWorkers bounds the parser's chunk workers (0 = the internal/par
// worker budget). The parsed graph is byte-identical for every value.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithFormat skips auto-detection and parses as f.
func WithFormat(f Format) Option { return func(c *config) { c.format = f } }

func resolve(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// LoadFile reads the graph stored at path, auto-detecting the format
// (including a .gz layer). A .csrg file is opened zero-copy via mmap when
// the platform allows; the mapping is released when the returned graph is
// garbage-collected. One lifetime caveat follows for zero-copy graphs:
// the mapping's lifetime tracks the *graph.Graph object, so keep the
// graph itself alive for as long as any of its slices (Edges, Off, …) is
// retained — a bare slice kept past the last reference to the graph
// would point into unmapped memory. Callers that need explicit control
// use OpenCSRG and Close themselves.
func LoadFile(path string, opts ...Option) (*graph.Graph, Format, error) {
	cfg := resolve(opts)
	head := make([]byte, 8)
	f, err := os.Open(path)
	if err != nil {
		return nil, FormatUnknown, err
	}
	nh, err := io.ReadFull(f, head)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		f.Close()
		return nil, FormatUnknown, err
	}
	head = head[:nh]
	// Plain (non-gzipped) .csrg goes through the zero-copy open; everything
	// else is slurped and decoded from memory.
	if !bytes.HasPrefix(head, gzipMagic) &&
		(cfg.format == FormatCSRG || cfg.format == FormatUnknown && DetectFormat(path, head) == FormatCSRG) {
		f.Close()
		m, err := OpenCSRG(path)
		if err != nil {
			return nil, FormatCSRG, err
		}
		g := m.Graph()
		// Tie the mapping's lifetime to the graph: when the last reference
		// to g goes away the cleanup unmaps. The cleanup argument must not
		// reach g (an arg that references ptr pins it forever and the
		// cleanup never runs), so detach the bare unmap closure — it holds
		// only the mapped byte slice, which lives outside the GC heap.
		if unmap := m.unmap; unmap != nil {
			m.unmap = nil // the graph owns the mapping now
			runtime.AddCleanup(g, func(u func() error) { u() }, unmap)
		}
		return g, FormatCSRG, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, FormatUnknown, err
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, FormatUnknown, err
	}
	return decodeBytes(path, data, cfg)
}

// Decode reads one graph from r, auto-detecting the format unless
// WithFormat pins it. The whole stream is buffered: the text parsers are
// chunk-parallel over memory.
func Decode(r io.Reader, opts ...Option) (*graph.Graph, Format, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, FormatUnknown, err
	}
	return DecodeBytes(data, opts...)
}

// DecodeBytes parses one graph from data (see Decode).
func DecodeBytes(data []byte, opts ...Option) (*graph.Graph, Format, error) {
	return decodeBytes("", data, resolve(opts))
}

func decodeBytes(name string, data []byte, cfg config) (*graph.Graph, Format, error) {
	if bytes.HasPrefix(data, gzipMagic) {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, FormatUnknown, fmt.Errorf("%w: gzip: %v", ErrFormat, err)
		}
		plain, err := io.ReadAll(zr)
		if err != nil {
			return nil, FormatUnknown, fmt.Errorf("%w: gzip: %v", ErrFormat, err)
		}
		if err := zr.Close(); err != nil {
			return nil, FormatUnknown, fmt.Errorf("%w: gzip: %v", ErrFormat, err)
		}
		data = plain
	}
	f := cfg.format
	if f == FormatUnknown {
		f = DetectFormat(name, data)
	}
	var (
		g   *graph.Graph
		err error
	)
	switch f {
	case FormatLegacy:
		g, err = decodeLegacy(data, cfg)
	case FormatDIMACS:
		g, err = decodeDIMACS(data, cfg)
	case FormatEdgeList:
		g, err = decodeEdgeList(data, cfg)
	case FormatMETIS:
		g, err = decodeMETIS(data, cfg)
	case FormatCSRG:
		g, err = ReadCSRG(bytes.NewReader(data), int64(len(data)))
	default:
		return nil, FormatUnknown, fmt.Errorf("%w: cannot detect format", ErrFormat)
	}
	return g, f, err
}

// Encode writes g to w in the given text or binary format. Writing the
// legacy format warns once per process: it exists for old artifacts
// (including engine snapshots); new files should be .csrg (or DIMACS for
// interchange).
func Encode(w io.Writer, g *graph.Graph, f Format) error {
	switch f {
	case FormatLegacy:
		warnLegacyOnce()
		return EncodeLegacy(w, g)
	case FormatDIMACS:
		return WriteDIMACS(w, g)
	case FormatEdgeList:
		return WriteEdgeList(w, g)
	case FormatMETIS:
		return WriteMETIS(w, g)
	case FormatCSRG:
		return WriteCSRG(w, g)
	}
	return fmt.Errorf("graphio: cannot encode format %q", f)
}

// EncodeFile writes g to path in the format implied by the extension
// (FormatForPath; unknown extensions get the legacy text format). A
// trailing .gz compresses text formats transparently; .csrg.gz is refused
// because a compressed container cannot be mmapped.
func EncodeFile(path string, g *graph.Graph) error {
	return EncodeFileAs(path, g, FormatUnknown)
}

// EncodeFileAs is EncodeFile with the format pinned explicitly
// (FormatUnknown falls back to the extension). The .gz handling and the
// .csrg.gz refusal apply the same way.
//
// The write is atomic: bytes land in a temp file in the same directory
// and rename into place. That makes "overwrite the dataset, reload the
// graph" safe even while the old file is being served through a live
// mmap — readers of the old inode keep their pages; nothing is ever
// truncated or mutated under them.
func EncodeFileAs(path string, g *graph.Graph, f Format) error {
	if f == FormatUnknown {
		f = FormatForPath(path)
	}
	if f == FormatUnknown {
		f = FormatLegacy
	}
	gz := hasGzSuffix(path)
	if gz && f == FormatCSRG {
		return errors.New("graphio: refusing to gzip a .csrg container (it could not be mmapped)")
	}
	out, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := out.Name()
	fail := func(err error) error {
		out.Close()
		os.Remove(tmp)
		return err
	}
	var w io.Writer = out
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(out)
		w = zw
	}
	if err := Encode(w, g, f); err != nil {
		return fail(err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return fail(err)
		}
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func hasGzSuffix(path string) bool {
	return len(path) > 3 && path[len(path)-3:] == ".gz"
}
