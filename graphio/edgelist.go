package graphio

// Whitespace/CSV edge lists — the lingua franca of web/social datasets
// (SNAP, KONECT, Network Repository):
//
//	# comment ("%" works too); a SNAP-style "# Nodes: N Edges: M"
//	#   comment pins the vertex count, covering trailing isolated vertices
//	u v       (0-based vertices, weight 1)
//	u,v,w     (comma separation works per-line, so .csv loads too)
//
// Without a Nodes: hint, n is inferred as max vertex + 1. Self loops are
// dropped; duplicate edges collapse to the lightest.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteEdgeList writes g as "u v w" lines with a SNAP-style header
// comment, so a round trip preserves the exact vertex count.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.N, g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func decodeEdgeList(data []byte, cfg config) (*graph.Graph, error) {
	edges, merged, err := parseText(data, cfg.workers, parseEdgeListChunk)
	if err != nil {
		return nil, err
	}
	// The Nodes: hint covers trailing isolated vertices, but real SNAP
	// files have non-contiguous ids whose max exceeds the node count
	// (web-Google: 875713 nodes, max id 916427) — take the larger.
	n := max(merged.nodes, int(merged.maxV)+1)
	if n <= 0 {
		return nil, fmt.Errorf("%w: empty edge list (no edges, no \"# Nodes:\" hint)", ErrFormat)
	}
	return build(n, edges)
}

func parseEdgeListChunk(chunk []byte, firstLine int, res *chunkResult) {
	line := firstLine
	res.maxV = -1
	var fbuf [][]byte
	for len(chunk) > 0 {
		var raw []byte
		raw, chunk = nextLine(chunk)
		raw = trimSpace(raw)
		no := line
		line++
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '#' || raw[0] == '%' {
			if res.nodes == 0 {
				res.nodes = nodesHint(raw)
			}
			continue
		}
		fbuf = appendFields(fbuf[:0], raw)
		if len(fbuf) != 2 && len(fbuf) != 3 {
			res.err = lineErr(FormatEdgeList, no, "want \"u v [w]\", got %d fields", len(fbuf))
			return
		}
		u, err1 := strconv.ParseInt(bstr(fbuf[0]), 10, 32)
		v, err2 := strconv.ParseInt(bstr(fbuf[1]), 10, 32)
		if err1 != nil || err2 != nil {
			res.err = lineErr(FormatEdgeList, no, "bad vertex pair")
			return
		}
		w := 1.0
		if len(fbuf) == 3 {
			var err error
			if w, err = strconv.ParseFloat(bstr(fbuf[2]), 64); err != nil {
				res.err = lineErr(FormatEdgeList, no, "bad weight %q", string(fbuf[2]))
				return
			}
		}
		res.recs++
		if m := int32(max(u, v)); m > res.maxV {
			res.maxV = m
		}
		if u == v {
			continue
		}
		res.edges = append(res.edges, graph.Edge{U: int32(u), V: int32(v), W: w})
	}
}

// nodesHint extracts N from a SNAP-style "# Nodes: N Edges: M" comment.
func nodesHint(comment []byte) int {
	f := fieldsOf(comment)
	for i := 0; i+1 < len(f); i++ {
		tok := strings.TrimSuffix(strings.ToLower(bstr(f[i])), ":")
		if tok == "nodes" || tok == "#nodes" {
			if n, err := strconv.Atoi(strings.TrimSuffix(bstr(f[i+1]), ":")); err == nil && n > 0 {
				return n
			}
		}
	}
	return 0
}

// DecodeEdgeList reads an edge list from r (see FormatEdgeList).
func DecodeEdgeList(r io.Reader) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeEdgeList(data, config{})
}
