package graphio

// METIS/Chaco adjacency format (.graph/.metis) — the input of the graph
// partitioners whose benchmark suites (Walshaw, DIMACS-10) are standard
// SSSP workloads:
//
//	% comments
//	<n> <m> [fmt [ncon]]          header; m counts undirected edges
//	<adjacency of vertex 1>       one line per vertex, 1-based neighbors
//	…                             (an empty line is an isolated vertex)
//
// fmt is up to three digits — vertex sizes, vertex weights, edge weights
// (e.g. "001" = edge weights: lines hold <nbr> <w> pairs). Vertex sizes
// and weights are parsed and discarded; edge weights default to 1. Every
// edge appears in both endpoints' lines; asymmetric duplicate weights
// collapse to the lightest. Self loops are dropped.
//
// Because the vertex id is the line number, the chunk-parallel parse
// first counts data lines per chunk, prefix-sums the counts to give every
// chunk its starting vertex, and only then parses — two passes, still
// byte-deterministic for any worker count.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
)

// WriteMETIS writes g in METIS adjacency format with edge weights
// (fmt 001). Weights print as %g, which round-trips floats exactly but is
// nonstandard for tools expecting integers.
func WriteMETIS(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d 001\n", g.N, g.M()); err != nil {
		return err
	}
	for v := 0; v < g.N; v++ {
		nbr, wt := g.Neighbors(int32(v))
		for i := range nbr {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d %g", nbr[i]+1, wt[i]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeMETIS reads a METIS adjacency file from r.
func DecodeMETIS(r io.Reader) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeMETIS(data, config{})
}

type metisHeader struct {
	n, m     int
	vsize    bool // leading vertex-size field per line
	vweights int  // vertex weights per line (ncon when enabled)
	eweights bool // (nbr, weight) pairs instead of bare neighbors
}

func metisComment(line []byte) bool { return line[0] == '%' }

func decodeMETIS(data []byte, cfg config) (*graph.Graph, error) {
	header, headLine, body, ok := scanHeader(data, metisComment)
	if !ok {
		return nil, fmt.Errorf("%w: missing METIS header line", ErrFormat)
	}
	hdr, err := parseMETISHeader(header, headLine)
	if err != nil {
		return nil, err
	}

	// Pass 1: fixed chunks, count lines and data (non-comment) lines per
	// chunk so pass 2 knows each chunk's starting vertex id.
	rest := data[body:]
	bounds := lineChunks(rest)
	nc := len(bounds)
	lineCounts := make([]int, nc)
	dataCounts := make([]int, nc)
	forChunks(cfg.workers, nc, func(c int) {
		chunk := rest[bounds[c][0]:bounds[c][1]]
		lines, datas := 0, 0
		for len(chunk) > 0 {
			var raw []byte
			raw, chunk = nextLine(chunk)
			lines++
			t := trimSpace(raw)
			if len(t) == 0 || !metisComment(t) {
				datas++ // empty lines are isolated vertices
			}
		}
		lineCounts[c] = lines
		dataCounts[c] = datas
	})
	firstLine := make([]int, nc)
	firstVertex := make([]int, nc)
	line, vert := headLine+1, 0
	for c := 0; c < nc; c++ {
		firstLine[c] = line
		firstVertex[c] = vert
		line += lineCounts[c]
		vert += dataCounts[c]
	}

	// Pass 2: parse each chunk's adjacency lines.
	results := make([]chunkResult, nc)
	forChunks(cfg.workers, nc, func(c int) {
		parseMETISChunk(rest[bounds[c][0]:bounds[c][1]], firstLine[c], firstVertex[c], hdr, &results[c])
	})
	merged := chunkResult{}
	total := 0
	for c := range results {
		if results[c].err != nil {
			return nil, results[c].err
		}
		total += len(results[c].edges)
		merged.recs += results[c].recs
	}
	if merged.recs != 2*hdr.m {
		return nil, fmt.Errorf("%w: adjacency lists hold %d entries, want 2·m = %d", ErrFormat, merged.recs, 2*hdr.m)
	}
	edges := make([]graph.Edge, 0, total)
	for c := range results {
		edges = append(edges, results[c].edges...)
	}
	return build(hdr.n, edges)
}

func parseMETISHeader(header []byte, headLine int) (metisHeader, error) {
	f := fieldsOf(header)
	if len(f) < 2 || len(f) > 4 {
		return metisHeader{}, lineErr(FormatMETIS, headLine, "header wants \"n m [fmt [ncon]]\"")
	}
	n, err1 := strconv.Atoi(bstr(f[0]))
	m, err2 := strconv.Atoi(bstr(f[1]))
	if err1 != nil || err2 != nil || n <= 0 || m < 0 {
		return metisHeader{}, lineErr(FormatMETIS, headLine, "bad header counts")
	}
	hdr := metisHeader{n: n, m: m}
	if len(f) >= 3 {
		bits := bstr(f[2])
		if len(bits) > 3 {
			return metisHeader{}, lineErr(FormatMETIS, headLine, "bad fmt field %q", bits)
		}
		for len(bits) < 3 {
			bits = "0" + bits
		}
		for _, b := range bits {
			if b != '0' && b != '1' {
				return metisHeader{}, lineErr(FormatMETIS, headLine, "bad fmt field %q", bstr(f[2]))
			}
		}
		hdr.vsize = bits[0] == '1'
		hdr.eweights = bits[2] == '1'
		if bits[1] == '1' {
			hdr.vweights = 1
		}
	}
	if len(f) == 4 {
		ncon, err := strconv.Atoi(bstr(f[3]))
		if err != nil || ncon < 0 {
			return metisHeader{}, lineErr(FormatMETIS, headLine, "bad ncon field")
		}
		if hdr.vweights > 0 {
			hdr.vweights = ncon
		}
	}
	return hdr, nil
}

func parseMETISChunk(chunk []byte, firstLine, firstVertex int, hdr metisHeader, res *chunkResult) {
	line, vertex := firstLine, firstVertex
	var fbuf [][]byte
	for len(chunk) > 0 {
		var raw []byte
		raw, chunk = nextLine(chunk)
		no := line
		line++
		t := trimSpace(raw)
		if len(t) > 0 && metisComment(t) {
			continue
		}
		v := vertex
		vertex++
		if v >= hdr.n {
			if len(t) == 0 {
				continue // tolerate trailing blank lines
			}
			res.err = lineErr(FormatMETIS, no, "more than n=%d vertex lines", hdr.n)
			return
		}
		if len(t) == 0 {
			continue // isolated vertex
		}
		fbuf = appendFields(fbuf[:0], t)
		i := 0
		if hdr.vsize {
			i++
		}
		i += hdr.vweights
		if i > len(fbuf) {
			res.err = lineErr(FormatMETIS, no, "truncated vertex-size/weight fields")
			return
		}
		for ; i < len(fbuf); i++ {
			nbr, err := strconv.ParseInt(bstr(fbuf[i]), 10, 32)
			if err != nil || nbr < 1 || int(nbr) > hdr.n {
				res.err = lineErr(FormatMETIS, no, "bad neighbor %q", string(fbuf[i]))
				return
			}
			w := 1.0
			if hdr.eweights {
				i++
				if i >= len(fbuf) {
					res.err = lineErr(FormatMETIS, no, "neighbor %d missing its edge weight", nbr)
					return
				}
				if w, err = strconv.ParseFloat(bstr(fbuf[i]), 64); err != nil {
					res.err = lineErr(FormatMETIS, no, "bad edge weight %q", string(fbuf[i]))
					return
				}
			}
			res.recs++
			if int(nbr-1) == v {
				continue // self loop
			}
			res.edges = append(res.edges, graph.Edge{U: int32(v), V: int32(nbr - 1), W: w})
		}
	}
}
