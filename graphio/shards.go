package graphio

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/partition"
)

// ShardManifestSuffix names the sidecar that ties a set of per-shard
// .csrg containers back into one logical graph.
const ShardManifestSuffix = ".shards.json"

// shardManifestVersion is bumped on incompatible manifest changes.
const shardManifestVersion = 1

// ErrManifest is wrapped by every shard-manifest validation failure.
var ErrManifest = errors.New("graphio: bad shard manifest")

// ShardManifest describes one logical graph stored as K shard containers
// plus the cut edges between them — the partitioned counterpart of a
// single .csrg file. The shard files live next to the manifest; File
// entries are relative to the manifest's directory. Together with the
// per-shard vertex maps and cut edges, the manifest carries everything a
// sharded oracle needs to rebuild the boundary overlay without ever
// materializing the whole graph in one place.
type ShardManifest struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	N       int    `json:"n"` // vertices of the logical graph
	M       int    `json:"m"` // edges of the logical graph (intra + cut)
	K       int    `json:"k"`

	Shards   []ShardEntry `json:"shards"`
	CutEdges []CutEdge    `json:"cut_edges"`
}

// ShardEntry is one shard: its container file and the local→global vertex
// map (ascending; local ID i is global vertex Vertices[i]).
type ShardEntry struct {
	File     string  `json:"file"`
	N        int     `json:"n"`
	M        int     `json:"m"`
	Vertices []int32 `json:"vertices"`
}

// CutEdge is one inter-shard edge in global vertex IDs.
type CutEdge struct {
	U int32   `json:"u"`
	V int32   `json:"v"`
	W float64 `json:"w"`
}

// IsShardManifestPath reports whether path names a shard manifest.
func IsShardManifestPath(path string) bool {
	return strings.HasSuffix(filepath.Base(path), ShardManifestSuffix)
}

// ShardManifestName strips the manifest suffix off a file name, yielding
// the logical graph name.
func ShardManifestName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ShardManifestSuffix)
}

// WriteShards persists a partitioned graph under dir: one
// `<name>.shard<i>.csrg` container per shard plus the `<name>.shards.json`
// manifest, every file written atomically (temp + rename). It returns the
// manifest path. The output is deterministic: the partitioner is, the
// container encoding is, and the manifest is marshaled from sorted data.
func WriteShards(dir, name string, res *partition.Result) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return "", fmt.Errorf("graphio: bad shard set name %q", name)
	}
	man := &ShardManifest{
		Version: shardManifestVersion,
		Name:    name,
		N:       res.N,
		K:       res.K,
	}
	for i, sh := range res.Shards {
		file := fmt.Sprintf("%s.shard%d.csrg", name, i)
		if err := EncodeFileAs(filepath.Join(dir, file), sh.G, FormatCSRG); err != nil {
			return "", fmt.Errorf("graphio: shard %d: %w", i, err)
		}
		man.Shards = append(man.Shards, ShardEntry{
			File:     file,
			N:        sh.G.N,
			M:        sh.G.M(),
			Vertices: sh.Vertices,
		})
		man.M += sh.G.M()
	}
	man.M += len(res.CutEdges)
	man.CutEdges = make([]CutEdge, len(res.CutEdges))
	for i, e := range res.CutEdges {
		man.CutEdges[i] = CutEdge{U: e.U, V: e.V, W: e.W}
	}

	path := filepath.Join(dir, name+ShardManifestSuffix)
	data, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, name+".shards.tmp*")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// LoadShardManifest reads and validates a shard manifest. Validation is
// structural — vertex maps must partition [0, N) ascending, cut edges must
// join distinct shards with positive weights — so a corrupted or
// hand-edited manifest fails here rather than as a wrong answer later.
// Shard containers are not opened; callers load them on demand via
// (*ShardManifest).LoadShard.
func LoadShardManifest(path string) (*ShardManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	man := &ShardManifest{}
	if err := json.Unmarshal(data, man); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	if err := man.validate(); err != nil {
		return nil, err
	}
	return man, nil
}

func (m *ShardManifest) validate() error {
	if m.Version != shardManifestVersion {
		return fmt.Errorf("%w: version %d (want %d)", ErrManifest, m.Version, shardManifestVersion)
	}
	if m.K != len(m.Shards) || m.K < 1 {
		return fmt.Errorf("%w: k=%d with %d shard entries", ErrManifest, m.K, len(m.Shards))
	}
	if m.N < 1 {
		return fmt.Errorf("%w: n=%d", ErrManifest, m.N)
	}
	part := make([]int32, m.N)
	for i := range part {
		part[i] = -1
	}
	covered := 0
	for i, sh := range m.Shards {
		if sh.File == "" || filepath.Base(sh.File) != sh.File {
			return fmt.Errorf("%w: shard %d file %q (need a bare file name)", ErrManifest, i, sh.File)
		}
		if sh.N != len(sh.Vertices) || sh.N == 0 {
			return fmt.Errorf("%w: shard %d: n=%d with %d vertices", ErrManifest, i, sh.N, len(sh.Vertices))
		}
		if !sort.SliceIsSorted(sh.Vertices, func(a, b int) bool { return sh.Vertices[a] < sh.Vertices[b] }) {
			return fmt.Errorf("%w: shard %d vertex map not ascending", ErrManifest, i)
		}
		for _, gv := range sh.Vertices {
			if gv < 0 || int(gv) >= m.N {
				return fmt.Errorf("%w: shard %d vertex %d outside [0,%d)", ErrManifest, i, gv, m.N)
			}
			if part[gv] != -1 {
				return fmt.Errorf("%w: vertex %d in shards %d and %d", ErrManifest, gv, part[gv], i)
			}
			part[gv] = int32(i)
			covered++
		}
	}
	if covered != m.N {
		return fmt.Errorf("%w: shards cover %d of %d vertices", ErrManifest, covered, m.N)
	}
	for _, e := range m.CutEdges {
		if e.U < 0 || int(e.U) >= m.N || e.V < 0 || int(e.V) >= m.N {
			return fmt.Errorf("%w: cut edge (%d,%d) out of range", ErrManifest, e.U, e.V)
		}
		if part[e.U] == part[e.V] {
			return fmt.Errorf("%w: cut edge (%d,%d) inside shard %d", ErrManifest, e.U, e.V, part[e.U])
		}
		if !(e.W > 0) {
			return fmt.Errorf("%w: cut edge (%d,%d) weight %v", ErrManifest, e.U, e.V, e.W)
		}
	}
	return nil
}

// Part reconstructs the vertex→shard assignment from the vertex maps.
func (m *ShardManifest) Part() []int32 {
	part := make([]int32, m.N)
	for i, sh := range m.Shards {
		for _, gv := range sh.Vertices {
			part[gv] = int32(i)
		}
	}
	return part
}

// LoadShard opens shard i's container relative to baseDir (the manifest's
// directory), zero-copy when the platform allows, and checks that its
// vertex count matches the manifest.
func (m *ShardManifest) LoadShard(baseDir string, i int, opts ...Option) (*ShardGraph, error) {
	if i < 0 || i >= len(m.Shards) {
		return nil, fmt.Errorf("%w: shard %d of %d", ErrManifest, i, len(m.Shards))
	}
	ent := m.Shards[i]
	g, _, err := LoadFile(filepath.Join(baseDir, ent.File), opts...)
	if err != nil {
		return nil, fmt.Errorf("graphio: shard %d (%s): %w", i, ent.File, err)
	}
	if g.N != ent.N || g.M() != ent.M {
		return nil, fmt.Errorf("%w: shard %d (%s): container is n=%d m=%d, manifest says n=%d m=%d",
			ErrManifest, i, ent.File, g.N, g.M(), ent.N, ent.M)
	}
	return &ShardGraph{G: g, Vertices: ent.Vertices}, nil
}

// ShardGraph pairs one loaded shard subgraph with its local→global vertex
// map.
type ShardGraph struct {
	G        *graph.Graph
	Vertices []int32
}
