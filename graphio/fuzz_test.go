package graphio

// Native fuzz targets, one per parser. Two invariants:
//
//  1. no input panics — parsers return errors, never crash;
//  2. every accepted input round-trips through the .csrg writer
//     bit-identically: parse → WriteCSRG → ReadCSRG → WriteCSRG yields
//     the same bytes (the container is a faithful, deterministic image
//     of whatever any parser accepts).
//
// The committed sample files under testdata/ double as the seed corpus;
// `go test` runs every seed even without -fuzz.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// assertCSRGRoundTrip is invariant (2).
func assertCSRGRoundTrip(t *testing.T, g *graph.Graph) {
	t.Helper()
	var img1 bytes.Buffer
	if err := WriteCSRG(&img1, g); err != nil {
		t.Fatalf("WriteCSRG rejected an accepted graph: %v", err)
	}
	g2, err := ReadCSRG(bytes.NewReader(img1.Bytes()), int64(img1.Len()))
	if err != nil {
		t.Fatalf("ReadCSRG rejected its own writer's output: %v", err)
	}
	var img2 bytes.Buffer
	if err := WriteCSRG(&img2, g2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img1.Bytes(), img2.Bytes()) {
		t.Fatal("csrg round trip is not bit-identical")
	}
}

func fuzzParser(f *testing.F, format Format, sample string, extra ...string) {
	if data, err := os.ReadFile(filepath.Join("testdata", sample)); err == nil {
		f.Add(data)
	}
	for _, s := range extra {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, _, err := DecodeBytes(data, WithFormat(format), WithWorkers(2))
		if err != nil {
			return
		}
		assertCSRGRoundTrip(t, g)
	})
}

func FuzzDIMACS(f *testing.F) {
	fuzzParser(f, FormatDIMACS, "sample.gr",
		"p sp 2 1\na 1 2 3\n", "c x\np sp 3 0\n", "p sp 1 0", "a 1 2 3\n")
}

func FuzzLegacy(f *testing.F) {
	fuzzParser(f, FormatLegacy, "sample.txt",
		"p 2 1\ne 0 1 2\n", "p 1 0\n", "e 0 1 1\n", "p 2 1\ne 0 1 1e300\n")
}

func FuzzEdgeList(f *testing.F) {
	fuzzParser(f, FormatEdgeList, "sample.el",
		"0 1\n", "0,1,2.5\n", "# Nodes: 9 Edges: 1\n0 1\n", "1 1\n", "-1 0\n")
}

func FuzzMETIS(f *testing.F) {
	fuzzParser(f, FormatMETIS, "sample.metis",
		"2 1\n2\n1\n", "3 2 011 2\n1 1 2\n1 1 1 3\n1 1 2\n", "2 1 1\n2 5\n1 5\n", "1 0\n\n")
}

// FuzzCSRG feeds arbitrary bytes to the binary reader: it must never
// panic, and anything it accepts must re-encode bit-identically.
func FuzzCSRG(f *testing.F) {
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2.5}})
	if err != nil {
		f.Fatal(err)
	}
	var img bytes.Buffer
	if err := WriteCSRG(&img, g); err != nil {
		f.Fatal(err)
	}
	f.Add(img.Bytes())
	f.Add(img.Bytes()[:csrgHeaderSize])
	f.Add([]byte(csrgMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCSRG(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		assertCSRGRoundTrip(t, got)
	})
}
