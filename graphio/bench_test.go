package graphio

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/testkit"
)

// BenchmarkLoadCSRGvsText measures the ingestion formats against each
// other on one mid-sized dense graph: chunk-parallel text parsing (the
// legacy and DIMACS codecs) versus the binary container through both the
// portable reader and the zero-copy mmap open. With
// BENCH_GRAPHIO_JSON=<path> the measurements land in a JSON file that CI
// uploads as the BENCH_graphio artifact. The mmap row's allocs/op is the
// zero-copy acceptance number: it stays flat no matter how many edges the
// file holds.
func BenchmarkLoadCSRGvsText(b *testing.B) {
	type measurement struct {
		Loader  string  `json:"loader"`
		N       int     `json:"n"`
		M       int     `json:"m"`
		Bytes   int64   `json:"file_bytes"`
		MS      float64 `json:"load_ms"`
		MBPerS  float64 `json:"mb_per_s"`
		Speedup float64 `json:"speedup_vs_legacy_text"`
	}
	g := testkit.Dense(60_000, 13)
	dir := b.TempDir()
	files := map[string]string{
		"legacy-text": filepath.Join(dir, "g.txt"),
		"dimacs-text": filepath.Join(dir, "g.gr"),
		"csrg":        filepath.Join(dir, "g.csrg"),
	}
	for _, path := range files {
		if err := EncodeFile(path, g); err != nil {
			b.Fatal(err)
		}
	}
	loaders := []struct {
		name string
		path string
		load func(path string) error
	}{
		{"legacy-text", files["legacy-text"], func(path string) error {
			_, _, err := LoadFile(path)
			return err
		}},
		{"dimacs-text", files["dimacs-text"], func(path string) error {
			_, _, err := LoadFile(path)
			return err
		}},
		{"csrg-readerat", files["csrg"], func(path string) error {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			st, err := f.Stat()
			if err != nil {
				return err
			}
			_, err = ReadCSRG(f, st.Size())
			return err
		}},
		{"csrg-mmap", files["csrg"], func(path string) error {
			m, err := OpenCSRG(path)
			if err != nil {
				return err
			}
			return m.Close()
		}},
	}
	var out []measurement
	for _, l := range loaders {
		st, err := os.Stat(l.path)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(l.name, func(b *testing.B) {
			b.ReportAllocs()
			var total int64
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if err := l.load(l.path); err != nil {
					b.Fatal(err)
				}
				total += time.Since(start).Nanoseconds()
			}
			ms := float64(total) / float64(b.N) / 1e6
			out = append(out, measurement{
				Loader: l.name, N: g.N, M: g.M(), Bytes: st.Size(),
				MS:     ms,
				MBPerS: float64(st.Size()) / (1 << 20) / (ms / 1e3),
			})
		})
	}
	if path := os.Getenv("BENCH_GRAPHIO_JSON"); path != "" && len(out) > 0 {
		base := out[0].MS // legacy-text
		for i := range out {
			out[i].Speedup = base / out[i].MS
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("# wrote %s\n", path)
	}
}
