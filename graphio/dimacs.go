package graphio

// DIMACS shortest-path format (.gr), as used by the 9th DIMACS
// Implementation Challenge road networks — the benchmark family of the
// hopset/SSSP experimental literature.
//
//	c free-form comments
//	p sp <n> <m>
//	a <u> <v> <w>     (m arc lines, 1-based vertices)
//
// The challenge files list both directions of every road segment; the
// canonicalization in graph.FromEdges collapses them (and any parallel
// arcs, keeping the lightest), so a .gr file loads as the intended simple
// undirected graph. "e <u> <v> [w]" edge lines (DIMACS clique heritage)
// are accepted too; self loops are dropped.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
)

// WriteDIMACS writes g as a DIMACS .gr file, one "a" line per undirected
// edge (so the header's m counts undirected edges).
func WriteDIMACS(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "c graphio export\np sp %d %d\n", g.N, g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "a %d %d %g\n", e.U+1, e.V+1, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func decodeDIMACS(data []byte, cfg config) (*graph.Graph, error) {
	header, headLine, body, ok := scanHeader(data, legacyComment)
	if !ok {
		return nil, fmt.Errorf("%w: missing \"p sp\" line", ErrFormat)
	}
	f := fieldsOf(header)
	if len(f) == 0 { // e.g. a line of bare commas: non-blank, zero fields
		return nil, lineErr(FormatDIMACS, headLine, "malformed line")
	}
	if string(f[0]) != "p" {
		return nil, lineErr(FormatDIMACS, headLine, "arc before \"p sp\" header")
	}
	if len(f) != 4 || string(f[1]) != "sp" {
		return nil, lineErr(FormatDIMACS, headLine, "p line wants \"p sp <n> <m>\"")
	}
	n, err1 := strconv.Atoi(bstr(f[2]))
	m, err2 := strconv.Atoi(bstr(f[3]))
	if err1 != nil || err2 != nil || n <= 0 || m < 0 {
		return nil, lineErr(FormatDIMACS, headLine, "bad p line")
	}

	edges, merged, err := parseText(data[body:], cfg.workers, func(chunk []byte, firstLine int, res *chunkResult) {
		parseDIMACSChunk(chunk, headLine+firstLine, res)
	})
	if err != nil {
		return nil, err
	}
	if merged.recs != m {
		return nil, fmt.Errorf("%w: expected %d arc lines, got %d", ErrFormat, m, merged.recs)
	}
	return build(n, edges)
}

func parseDIMACSChunk(chunk []byte, firstLine int, res *chunkResult) {
	line := firstLine
	var fbuf [][]byte
	for len(chunk) > 0 {
		var raw []byte
		raw, chunk = nextLine(chunk)
		raw = trimSpace(raw)
		no := line
		line++
		if len(raw) == 0 || raw[0] == 'c' {
			continue
		}
		fbuf = appendFields(fbuf[:0], raw)
		if len(fbuf) == 0 {
			res.err = lineErr(FormatDIMACS, no, "malformed line")
			return
		}
		switch string(fbuf[0]) {
		case "a", "e":
			w := 1.0
			switch len(fbuf) {
			case 4:
				var err error
				if w, err = strconv.ParseFloat(bstr(fbuf[3]), 64); err != nil {
					res.err = lineErr(FormatDIMACS, no, "bad weight %q", string(fbuf[3]))
					return
				}
			case 3:
				if string(fbuf[0]) == "a" {
					res.err = lineErr(FormatDIMACS, no, "a line wants \"a <u> <v> <w>\"")
					return
				}
			default:
				res.err = lineErr(FormatDIMACS, no, "arc line wants 2 vertices and a weight")
				return
			}
			u, err1 := strconv.ParseInt(bstr(fbuf[1]), 10, 32)
			v, err2 := strconv.ParseInt(bstr(fbuf[2]), 10, 32)
			if err1 != nil || err2 != nil || u < 1 || v < 1 {
				res.err = lineErr(FormatDIMACS, no, "bad 1-based vertex pair")
				return
			}
			res.recs++
			if u == v {
				continue // self loop: never on a shortest path
			}
			res.edges = append(res.edges, graph.Edge{U: int32(u - 1), V: int32(v - 1), W: w})
		case "p":
			res.err = lineErr(FormatDIMACS, no, "duplicate p line")
			return
		default:
			res.err = lineErr(FormatDIMACS, no, "unknown record %q", string(fbuf[0]))
			return
		}
	}
}
