//go:build !unix

package graphio

import (
	"errors"
	"os"
)

// mapFile is unavailable on this platform; OpenCSRG falls back to the
// portable ReadCSRG path.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("graphio: mmap unsupported on this platform")
}
