package graphio

// Deterministic chunk-parallel parsing scaffold shared by the text
// parsers. The input is split into byte ranges that depend only on the
// bytes themselves (fixed-size targets advanced to the next newline), each
// chunk is parsed into its own result slot by a small worker pool, and the
// slots are merged in chunk order — so the edge stream handed to
// graph.FromEdges is identical for every worker count.

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/par"
)

// parseChunkSize is the target bytes per parser chunk. A variable so the
// determinism tests can force multi-chunk parses on small inputs; chunk
// boundaries are a pure function of the input bytes either way.
var parseChunkSize = 256 << 10

// lineChunks splits data into newline-aligned [lo, hi) byte ranges of
// roughly parseChunkSize bytes. Boundaries depend only on data.
func lineChunks(data []byte) [][2]int {
	if len(data) == 0 {
		return nil
	}
	var bounds [][2]int
	start := 0
	for target := parseChunkSize; target < len(data); target += parseChunkSize {
		if target <= start {
			continue
		}
		nl := bytes.IndexByte(data[target:], '\n')
		if nl < 0 {
			break
		}
		end := target + nl + 1
		bounds = append(bounds, [2]int{start, end})
		start = end
	}
	if start < len(data) {
		bounds = append(bounds, [2]int{start, len(data)})
	}
	return bounds
}

// forChunks runs fn(c) for every chunk index on up to workers goroutines
// (0 = the par budget). fn must write only its own slot.
func forChunks(workers, n int, fn func(c int)) {
	if workers <= 0 {
		workers = par.Workers()
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return
	}
	if workers <= 1 {
		for c := 0; c < n; c++ {
			fn(c)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= n {
					return
				}
				fn(c)
			}
		}()
	}
	wg.Wait()
}

// chunkResult is one chunk's parse output. Merging concatenates edges in
// chunk order and reports the error of the lowest-index failing chunk.
type chunkResult struct {
	edges []graph.Edge
	recs  int // edge records consumed (arcs / adjacency pairs)
	maxV  int32
	nodes int // SNAP "# Nodes:" hint (edge lists); 0 = absent
	err   error
}

// parseText drives the shared two-phase parse: split into chunks, count
// lines per chunk (so every chunk knows its global starting line number
// for error messages), parse in parallel, merge in order.
func parseText(data []byte, workers int, parse func(chunk []byte, firstLine int, res *chunkResult)) ([]graph.Edge, *chunkResult, error) {
	bounds := lineChunks(data)
	n := len(bounds)
	if n == 0 {
		return nil, &chunkResult{}, nil
	}
	counts := make([]int, n)
	forChunks(workers, n, func(c int) {
		counts[c] = countLines(data[bounds[c][0]:bounds[c][1]])
	})
	firstLine := make([]int, n)
	line := 1
	for c := 0; c < n; c++ {
		firstLine[c] = line
		line += counts[c]
	}
	results := make([]chunkResult, n)
	forChunks(workers, n, func(c int) {
		parse(data[bounds[c][0]:bounds[c][1]], firstLine[c], &results[c])
	})

	merged := &chunkResult{maxV: -1}
	total := 0
	for c := range results {
		r := &results[c]
		if r.err != nil {
			return nil, nil, r.err
		}
		total += len(r.edges)
		merged.recs += r.recs
		if r.maxV > merged.maxV {
			merged.maxV = r.maxV
		}
		if merged.nodes == 0 {
			merged.nodes = r.nodes
		}
	}
	edges := make([]graph.Edge, 0, total)
	for c := range results {
		edges = append(edges, results[c].edges...)
	}
	return edges, merged, nil
}

// countLines counts the lines of chunk; a trailing segment with no final
// newline counts as one line.
func countLines(chunk []byte) int {
	n := bytes.Count(chunk, []byte{'\n'})
	if len(chunk) > 0 && chunk[len(chunk)-1] != '\n' {
		n++
	}
	return n
}

// nextLine splits off the first line of data (without its newline).
func nextLine(data []byte) (line, rest []byte) {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		return data[:i], data[i+1:]
	}
	return data, nil
}

// trimSpace trims ASCII whitespace from both ends without allocating.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && isSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' }

// fieldsOf splits a line on whitespace and commas (so CSV edge lists fall
// out for free) without allocating the field contents.
func fieldsOf(line []byte) [][]byte {
	var out [][]byte
	return appendFields(out, line)
}

func appendFields(out [][]byte, line []byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && (isSpace(line[i]) || line[i] == ',') {
			i++
		}
		start := i
		for i < len(line) && !isSpace(line[i]) && line[i] != ',' {
			i++
		}
		if i > start {
			out = append(out, line[start:i])
		}
	}
	return out
}

// bstr views b as a string without copying. Safe because the parsers only
// pass it to strconv, which does not retain it.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// lineErr builds a position-carrying parse error wrapping ErrFormat.
func lineErr(f Format, line int, format string, args ...any) error {
	return fmt.Errorf("%w: %s line %d: %s", ErrFormat, f, line, fmt.Sprintf(format, args...))
}

// build funnels the merged edge stream through graph.FromEdges, wrapping
// any validation failure so it matches both ErrFormat and the specific
// graph error (ErrBadWeight, ErrVertexRange, …).
func build(n int, edges []graph.Edge) (*graph.Graph, error) {
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrFormat, err)
	}
	return g, nil
}
