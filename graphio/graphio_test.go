package graphio

import (
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/testkit"
)

// sampleWant is the graph every testdata/sample.* file encodes.
func sampleWant(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 1, W: 1.5}, {U: 0, V: 2, W: 2}, {U: 1, V: 2, W: 1},
		{U: 1, V: 3, W: 4}, {U: 2, V: 4, W: 2.5}, {U: 3, V: 4, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sameGraph(t *testing.T, got, want *graph.Graph, label string) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: n=%d want %d", label, got.N, want.N)
	}
	if !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatalf("%s: edge lists differ:\n got %v\nwant %v", label, got.Edges, want.Edges)
	}
	if !reflect.DeepEqual(got.Off, want.Off) || !reflect.DeepEqual(got.Nbr, want.Nbr) ||
		!reflect.DeepEqual(got.Wt, want.Wt) || !reflect.DeepEqual(got.EID, want.EID) {
		t.Fatalf("%s: CSR arrays differ", label)
	}
}

// TestSamplesAgree parses every sample file — one graph, five formats —
// and demands identical results with the right detected format.
func TestSamplesAgree(t *testing.T) {
	want := sampleWant(t)
	cases := map[string]Format{
		"sample.gr":    FormatDIMACS,
		"sample.el":    FormatEdgeList,
		"sample.csv":   FormatEdgeList,
		"sample.metis": FormatMETIS,
		"sample.txt":   FormatLegacy,
	}
	for name, wantF := range cases {
		g, f, err := LoadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f != wantF {
			t.Errorf("%s: detected %s, want %s", name, f, wantF)
		}
		sameGraph(t, g, want, name)
	}
}

// TestGzipTransparent gzips a sample and expects the same graph back,
// both from bytes and through LoadFile with a .gz name.
func TestGzipTransparent(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "sample.gr"))
	if err != nil {
		t.Fatal(err)
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(raw)
	zw.Close()

	g, f, err := DecodeBytes(zbuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if f != FormatDIMACS {
		t.Fatalf("format %s", f)
	}
	sameGraph(t, g, sampleWant(t), "gz bytes")

	path := filepath.Join(t.TempDir(), "sample.gr.gz")
	if err := os.WriteFile(path, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g2, f2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != FormatDIMACS {
		t.Fatalf("format %s", f2)
	}
	sameGraph(t, g2, sampleWant(t), "gz file")
}

func TestDetectFormat(t *testing.T) {
	cases := []struct {
		name string
		data string
		want Format
	}{
		{"", "p sp 3 1\na 1 2 5\n", FormatDIMACS},
		{"", "c x\nc y\np 3 1\ne 0 1 5\n", FormatLegacy},
		{"", "0 1 5\n", FormatEdgeList},
		{"", "# comment\n0 1\n", FormatEdgeList},
		{"x.metis", "3 2\n2 3\n1 3\n1 2\n", FormatMETIS},
		{"x.graph", "% c\n3 2\n", FormatMETIS},
		{"x.metis.gz", "3 2\n", FormatMETIS},
		{"", "hello world\n", FormatUnknown},
		{"", "", FormatUnknown},
		{"x.gr", "", FormatDIMACS}, // extension fallback
	}
	for i, c := range cases {
		if got := DetectFormat(c.name, []byte(c.data)); got != c.want {
			t.Errorf("case %d (%q, %q): got %s want %s", i, c.name, c.data, got, c.want)
		}
	}
	var buf bytes.Buffer
	if err := WriteCSRG(&buf, sampleWant(t)); err != nil {
		t.Fatal(err)
	}
	if got := DetectFormat("", buf.Bytes()); got != FormatCSRG {
		t.Errorf("csrg magic: got %s", got)
	}
}

// TestWorkerCountByteIdentical is the acceptance check for the parsers'
// determinism discipline: a fixed input parses to byte-identical graphs
// (compared via the deterministic .csrg image) for every worker count,
// with the chunk size shrunk so the input really spans many chunks.
func TestWorkerCountByteIdentical(t *testing.T) {
	old := parseChunkSize
	parseChunkSize = 1 << 9
	defer func() { parseChunkSize = old }()

	g := testkit.Gnm(600, 11)
	encoders := map[Format]func(*bytes.Buffer) error{
		FormatLegacy:   func(b *bytes.Buffer) error { return EncodeLegacy(b, g) },
		FormatDIMACS:   func(b *bytes.Buffer) error { return WriteDIMACS(b, g) },
		FormatEdgeList: func(b *bytes.Buffer) error { return WriteEdgeList(b, g) },
		FormatMETIS:    func(b *bytes.Buffer) error { return WriteMETIS(b, g) },
	}
	for f, enc := range encoders {
		var buf bytes.Buffer
		if err := enc(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() < 4*parseChunkSize {
			t.Fatalf("%s: input too small (%d bytes) to exercise chunking", f, buf.Len())
		}
		var baseline []byte
		for _, workers := range []int{1, 2, 8} {
			got, gf, err := DecodeBytes(buf.Bytes(), WithFormat(f), WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", f, workers, err)
			}
			if gf != f {
				t.Fatalf("format echo %s != %s", gf, f)
			}
			var img bytes.Buffer
			if err := WriteCSRG(&img, got); err != nil {
				t.Fatal(err)
			}
			if baseline == nil {
				baseline = img.Bytes()
				sameGraph(t, got, g, f.String())
				continue
			}
			if !bytes.Equal(baseline, img.Bytes()) {
				t.Fatalf("%s: workers=%d parse differs from workers=1", f, workers)
			}
		}
	}
}

// TestLegacyRoundTrip ports the old internal/graph codec test: encode,
// decode, compare.
func TestLegacyRoundTrip(t *testing.T) {
	g := graph.Gnm(50, 150, graph.UniformWeights(1, 7), 9)
	var buf bytes.Buffer
	if err := EncodeLegacy(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := DecodeLegacy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g2, g, "legacy round trip")
}

// TestLegacyDecodeErrors ports the old malformed-input table.
func TestLegacyDecodeErrors(t *testing.T) {
	cases := []string{
		"",                      // missing p
		"p 3\ne 0 1 1",          // short p
		"p 3 1\np 3 1\ne 0 1 1", // duplicate p
		"e 0 1 1\np 3 1",        // e before p
		"p 3 2\ne 0 1 1",        // wrong edge count
		"p 3 1\ne 0 1",          // short e
		"p 3 1\ne 0 x 1",        // bad vertex
		"p 3 1\nq 0 1 1",        // unknown record
		"p x 1\ne 0 1 1",        // bad n
		"p 3 1\ne 0 1 -1",       // invalid weight (via FromEdges)
	}
	for i, s := range cases {
		if _, err := DecodeLegacy(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected error for %q", i, s)
		}
	}
}

func TestLegacyDecodeSkipsComments(t *testing.T) {
	in := "c hello\n\np 2 1\nc mid\ne 0 1 2.5\n"
	g, err := DecodeLegacy(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 2.5 {
		t.Fatalf("w=%v ok=%v", w, ok)
	}
}

func TestParserErrors(t *testing.T) {
	cases := []struct {
		f    Format
		data string
	}{
		{FormatDIMACS, "p sp 3 2\na 1 2 5\n"},         // arc-count mismatch
		{FormatDIMACS, "p sp 3 1\na 0 2 5\n"},         // 0 is not a 1-based vertex
		{FormatDIMACS, "p sp 3 1\na 1 2\n"},           // a-line without weight
		{FormatDIMACS, "a 1 2 5\np sp 3 1\n"},         // arcs before header
		{FormatDIMACS, "p sp 3 1\np sp 3 1\na 1 2 5"}, // duplicate header
		{FormatDIMACS, "p sp 3 1\na 1 2 x\n"},         // bad weight
		{FormatEdgeList, "0 1 2 3\n"},                 // too many fields
		{FormatEdgeList, "0\n"},                       // too few fields
		{FormatEdgeList, "0 x\n"},                     // bad vertex
		{FormatEdgeList, "# only comments\n"},         // no edges, no hint
		{FormatEdgeList, "0 1 -3\n"},                  // bad weight (FromEdges)
		{FormatMETIS, "2 1 001\n2\n1 5\n"},            // missing pair weight
		{FormatMETIS, "2 1\n2\n1\n1\n"},               // more vertex lines than n
		{FormatMETIS, "2 2\n2\n1\n"},                  // entry count != 2m
		{FormatMETIS, "2 1\n3\n1\n"},                  // neighbor out of range
		{FormatMETIS, "x 1\n"},                        // bad header
		{FormatMETIS, ""},                             // empty
	}
	for i, c := range cases {
		if _, _, err := DecodeBytes([]byte(c.data), WithFormat(c.f)); err == nil {
			t.Errorf("case %d (%s %q): expected error", i, c.f, c.data)
		} else if !errors.Is(err, ErrFormat) {
			t.Errorf("case %d: error %v does not wrap ErrFormat", i, err)
		}
	}
}

// TestSelfLoopsAndParallelEdges: the dataset formats drop self loops and
// collapse parallel edges to the lightest, matching FromEdges semantics.
func TestSelfLoopsAndParallelEdges(t *testing.T) {
	in := "p sp 3 4\na 1 1 9\na 1 2 5\na 2 1 3\na 2 3 1\n"
	g, _, err := DecodeBytes([]byte(in), WithFormat(FormatDIMACS))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d want 2", g.M())
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 3 {
		t.Fatalf("parallel arcs should keep the lightest: w=%v ok=%v", w, ok)
	}
}

// TestEdgeListNodesHint: the SNAP header preserves trailing isolated
// vertices that plain inference would drop.
func TestEdgeListNodesHint(t *testing.T) {
	g, _, err := DecodeBytes([]byte("# Nodes: 7 Edges: 1\n0 1\n"), WithFormat(FormatEdgeList))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 7 || g.M() != 1 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	g2, _, err := DecodeBytes([]byte("0 1\n"), WithFormat(FormatEdgeList))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != 2 {
		t.Fatalf("inferred n=%d want 2", g2.N)
	}
	// Real SNAP files have non-contiguous ids exceeding the node count
	// (web-Google: 875713 nodes, max id 916427): the max must win.
	g3, _, err := DecodeBytes([]byte("# Nodes: 3 Edges: 2\n0 1\n1 5\n"), WithFormat(FormatEdgeList))
	if err != nil {
		t.Fatal(err)
	}
	if g3.N != 6 {
		t.Fatalf("sparse-id SNAP list: n=%d want 6", g3.N)
	}
}

// TestMETISVariants exercises unweighted files, vertex weights/sizes
// skipping, and isolated vertices (empty lines).
func TestMETISVariants(t *testing.T) {
	// Unweighted triangle plus an isolated vertex 4.
	g, _, err := DecodeBytes([]byte("4 3\n2 3\n1 3\n1 2\n\n"), WithFormat(FormatMETIS))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 1 {
		t.Fatalf("unweighted default: w=%v ok=%v", w, ok)
	}
	// fmt 011, ncon 2: skip two vertex weights per line, then weighted pairs.
	in := "3 2 011 2\n7 8 2 1.5\n7 8 1 1.5 3 2.5\n7 8 2 2.5\n"
	g2, _, err := DecodeBytes([]byte(in), WithFormat(FormatMETIS))
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 2 {
		t.Fatalf("m=%d want 2", g2.M())
	}
	if w, ok := g2.HasEdge(1, 2); !ok || w != 2.5 {
		t.Fatalf("weighted pair: w=%v ok=%v", w, ok)
	}
}

// TestEncodeFileFormats writes a graph through every extension and loads
// it back.
func TestEncodeFileFormats(t *testing.T) {
	g := testkit.Grid(100, 5)
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.gr", "g.el", "g.metis", "g.csrg", "g.gr.gz"} {
		path := filepath.Join(dir, name)
		if err := EncodeFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, _, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameGraph(t, got, g, name)
	}
	if err := EncodeFile(filepath.Join(dir, "g.csrg.gz"), g); err == nil {
		t.Fatal("expected refusal to gzip .csrg")
	}
}

func TestParseFormatNames(t *testing.T) {
	for _, f := range []Format{FormatLegacy, FormatDIMACS, FormatEdgeList, FormatMETIS, FormatCSRG} {
		if got := ParseFormat(f.String()); got != f {
			t.Errorf("ParseFormat(%q) = %s", f.String(), got)
		}
	}
	if ParseFormat("nope") != FormatUnknown {
		t.Error("unknown name should map to FormatUnknown")
	}
}
