//go:build unix

package graphio

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared. The returned release
// function unmaps; the caller may close f immediately (the mapping holds
// its own reference to the pages).
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
