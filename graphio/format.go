package graphio

import (
	"path/filepath"
	"strings"
)

// Format identifies one on-disk graph representation.
type Format int

const (
	// FormatUnknown means detection failed; Decode refuses it.
	FormatUnknown Format = iota
	// FormatLegacy is the repository's original text format:
	// "p <n> <m>" then m lines "e <u> <v> <w>" with 0-based vertices.
	// Readable forever; new artifacts should prefer FormatCSRG.
	FormatLegacy
	// FormatDIMACS is the 9th DIMACS Implementation Challenge shortest-path
	// format (.gr): "p sp <n> <m>" then arc lines "a <u> <v> <w>" with
	// 1-based vertices. Each undirected edge may appear as one or two arcs;
	// parallel arcs collapse to the lightest.
	FormatDIMACS
	// FormatEdgeList is a whitespace- or comma-separated edge list:
	// "u v [w]" per line, 0-based vertices, weight defaulting to 1.
	// A SNAP-style "# Nodes: N Edges: M" comment pins the vertex count;
	// otherwise n is inferred as max vertex + 1.
	FormatEdgeList
	// FormatMETIS is the METIS/Chaco adjacency format: a "n m [fmt [ncon]]"
	// header, then one line per vertex listing its (1-based) neighbors,
	// with edge weights when fmt enables them.
	FormatMETIS
	// FormatCSRG is the repository's versioned binary CSR container,
	// openable zero-copy via mmap (see WriteCSRG/OpenCSRG).
	FormatCSRG
)

func (f Format) String() string {
	switch f {
	case FormatLegacy:
		return "legacy"
	case FormatDIMACS:
		return "dimacs"
	case FormatEdgeList:
		return "edgelist"
	case FormatMETIS:
		return "metis"
	case FormatCSRG:
		return "csrg"
	default:
		return "unknown"
	}
}

// ParseFormat maps a format name (as printed by Format.String) back to the
// Format; it returns FormatUnknown for anything else.
func ParseFormat(s string) Format {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "legacy", "text", "txt":
		return FormatLegacy
	case "dimacs", "gr":
		return FormatDIMACS
	case "edgelist", "el", "edges", "csv", "tsv":
		return FormatEdgeList
	case "metis", "graph":
		return FormatMETIS
	case "csrg", "bin", "binary":
		return FormatCSRG
	}
	return FormatUnknown
}

// FormatForPath maps a file name to a Format by extension (a trailing .gz
// is stripped first). It is the dispatch used when writing: the content
// sniffing of DetectFormat takes precedence when reading.
func FormatForPath(path string) Format {
	base := strings.ToLower(filepath.Base(path))
	base = strings.TrimSuffix(base, ".gz")
	switch filepath.Ext(base) {
	case ".csrg":
		return FormatCSRG
	case ".gr", ".dimacs":
		return FormatDIMACS
	case ".graph", ".metis":
		return FormatMETIS
	case ".el", ".edges", ".csv", ".tsv", ".wel":
		return FormatEdgeList
	case ".txt":
		return FormatLegacy
	}
	return FormatUnknown
}

// SupportedPath reports whether path's extension names a format this
// package can read (including a trailing .gz).
func SupportedPath(path string) bool { return FormatForPath(path) != FormatUnknown }

// gzipMagic prefixes every gzip stream.
var gzipMagic = []byte{0x1f, 0x8b}

// DetectFormat sniffs the graph format from the (decompressed) leading
// bytes of a file, falling back to the file-name extension for formats that
// cannot be distinguished by content (METIS adjacency vs. bare edge lists).
// name may be empty when the data came from a stream.
//
// Precedence: binary magic, then a DIMACS/legacy "p" header line, then the
// extension, then "first significant line is numeric" → edge list.
func DetectFormat(name string, data []byte) Format {
	if len(data) >= 4 && string(data[:4]) == csrgMagic {
		return FormatCSRG
	}
	ext := FormatForPath(name)
	if ext == FormatMETIS || ext == FormatCSRG {
		return ext
	}
	// Scan the first few significant lines for a header giveaway.
	rest := data
	for lines := 0; len(rest) > 0 && lines < 64; lines++ {
		var line []byte
		line, rest = nextLine(rest)
		line = trimSpace(line)
		if len(line) == 0 {
			continue
		}
		switch line[0] {
		case 'c': // DIMACS/legacy comment
			continue
		case '#', '%': // edge-list / METIS comment
			continue
		case 'p':
			f := fieldsOf(line)
			if len(f) >= 2 && string(f[1]) == "sp" {
				return FormatDIMACS
			}
			return FormatLegacy
		case 'a':
			return FormatDIMACS
		case 'e':
			return FormatLegacy
		}
		if isNumericStart(line[0]) {
			if ext != FormatUnknown {
				return ext
			}
			return FormatEdgeList
		}
		return FormatUnknown
	}
	return ext
}

func isNumericStart(b byte) bool {
	return b >= '0' && b <= '9' || b == '-' || b == '+' || b == '.'
}
