// Package repro is a from-scratch Go reproduction of
//
//	Michael Elkin and Shaked Matar,
//	"Deterministic PRAM Approximate Shortest Paths in Polylogarithmic Time
//	 and Slightly Super-Linear Work", SPAA 2021 (arXiv:2009.14729).
//
// The library lives under internal/: package internal/core is the public
// facade (build a deterministic hopset, query (1+ε)-approximate distances
// and shortest-path trees); DESIGN.md maps every paper component to its
// package; EXPERIMENTS.md records the measured reproduction of every
// theorem-level claim. The benchmarks in bench_test.go regenerate each
// experiment (run with -benchtime=1x).
package repro
