// Package repro is a from-scratch Go reproduction of
//
//	Michael Elkin and Shaked Matar,
//	"Deterministic PRAM Approximate Shortest Paths in Polylogarithmic Time
//	 and Slightly Super-Linear Work", SPAA 2021 (arXiv:2009.14729).
//
// Package oracle is the public facade: a build-once / query-many distance
// oracle — build a deterministic hopset once, then serve concurrent
// (1+ε)-approximate distance, path and shortest-path-tree queries with
// LRU caching, query batching, snapshots and an HTTP handler (cmd/serve).
// Package graphio is the ingestion layer: chunk-parallel deterministic
// parsers for DIMACS/edge-list/METIS/legacy datasets and the mmap-able
// .csrg binary container (cmd/graphconv converts, cmd/serve -graph-dir
// serves a directory of datasets).
// The algorithmic layers live under internal/, wrapped by internal/core.
// DESIGN.md maps every paper component to its package; EXPERIMENTS.md
// records the measured reproduction of every theorem-level claim. The
// benchmarks in bench_test.go regenerate each experiment (run with
// -benchtime=1x).
package repro
